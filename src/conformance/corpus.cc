#include "src/conformance/corpus.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/conformance/asm.h"

namespace bvf {
namespace conf {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

// `-- mem` body: whitespace-separated two-nibble hex bytes. A lone trailing
// nibble is a truncated byte — a parse error, never silently dropped.
bool ParseMemHex(const std::string& body, std::vector<uint8_t>* out, std::string* error) {
  int pending = -1;
  int line_no = 1;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '\n') {
      ++line_no;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (pending >= 0) {
        return Fail(error, "mem line " + std::to_string(line_no) +
                               ": truncated hex byte (odd nibble count)");
      }
      continue;
    }
    const int nibble = HexNibble(c);
    if (nibble < 0) {
      return Fail(error, "mem line " + std::to_string(line_no) +
                             ": invalid hex character '" + std::string(1, c) + "'");
    }
    if (pending < 0) {
      pending = nibble;
    } else {
      out->push_back(static_cast<uint8_t>(pending << 4 | nibble));
      pending = -1;
    }
  }
  if (pending >= 0) {
    return Fail(error, "mem line " + std::to_string(line_no) +
                           ": truncated hex byte (odd nibble count)");
  }
  return true;
}

// `-- result` body: one u64, decimal or 0x hex, optional leading '-' (stored
// two's-complement, so `-1` means 0xffffffffffffffff).
bool ParseResult(const std::string& body, uint64_t* out, std::string* error) {
  const std::string text = Trim(body);
  if (text.empty()) {
    return Fail(error, "empty -- result section");
  }
  size_t i = 0;
  bool neg = false;
  if (text[i] == '-' || text[i] == '+') {
    neg = text[i] == '-';
    ++i;
  }
  const char* start = text.c_str() + i;
  char* end = nullptr;
  errno = 0;
  const uint64_t magnitude = std::strtoull(start, &end, 0);
  if (end == start || errno == ERANGE || Trim(end).size() != 0) {
    return Fail(error, "malformed -- result value '" + text + "'");
  }
  *out = neg ? static_cast<uint64_t>(-static_cast<int64_t>(magnitude)) : magnitude;
  return true;
}

std::string StripComments(const std::string& line) {
  const size_t hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

}  // namespace

bool ParseCaseText(const std::string& text, const std::string& name,
                   ConformanceCase* out, std::string* error) {
  *out = ConformanceCase{};
  out->name = name;

  // Split into sections on `-- <tag>` header lines.
  std::istringstream is(text);
  std::string line;
  std::string section;  // current tag; empty = preamble
  std::string asm_body;
  std::string mem_body;
  std::string result_body;
  std::string error_body;
  bool have_asm = false;
  bool have_mem = false;
  bool have_result = false;
  bool have_error = false;
  while (std::getline(is, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.rfind("--", 0) == 0) {
      const std::string tag = Trim(trimmed.substr(2));
      if (tag == "asm") {
        section = tag;
        have_asm = true;
      } else if (tag == "mem") {
        section = tag;
        have_mem = true;
      } else if (tag == "result") {
        section = tag;
        have_result = true;
      } else if (tag == "error") {
        section = tag;
        have_error = true;
      } else {
        return Fail(error, "unknown section '-- " + tag + "'");
      }
      continue;
    }
    if (section.empty()) {
      if (!Trim(StripComments(line)).empty()) {
        return Fail(error, "content before the first section header");
      }
      continue;
    }
    std::string* body = section == "asm"      ? &asm_body
                        : section == "mem"    ? &mem_body
                        : section == "result" ? &result_body
                                              : &error_body;
    body->append(line);
    body->push_back('\n');
  }

  if (!have_asm) {
    return Fail(error, "missing -- asm section");
  }
  if (have_result && have_error) {
    return Fail(error, "-- result and -- error are mutually exclusive");
  }
  if (!have_result && !have_error) {
    return Fail(error, "missing -- result (or -- error) section");
  }

  out->asm_text = asm_body;
  AsmError asm_error;
  if (!AssembleProgram(asm_body, &out->insns, &asm_error)) {
    return Fail(error, "asm " + asm_error.Format());
  }
  if (have_mem) {
    // Comments are legal inside -- mem too; strip them line-wise first.
    std::istringstream mem_is(mem_body);
    std::string stripped;
    while (std::getline(mem_is, line)) {
      stripped.append(StripComments(line));
      stripped.push_back('\n');
    }
    if (!ParseMemHex(stripped, &out->mem, error)) {
      return false;
    }
  }
  if (have_result) {
    if (!ParseResult(StripComments(result_body), &out->expected_r0, error)) {
      return false;
    }
  } else {
    out->expect_reject = true;
    // The error body (minus comments/whitespace) is an optional log substring.
    std::istringstream err_is(error_body);
    std::string collected;
    while (std::getline(err_is, line)) {
      const std::string t = Trim(StripComments(line));
      if (!t.empty()) {
        collected = collected.empty() ? t : collected + "\n" + t;
      }
    }
    out->expected_error = collected;
  }
  return true;
}

bool LoadCaseFile(const std::string& path, ConformanceCase* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Fail(error, path + ": cannot open");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::string stem = std::filesystem::path(path).stem().string();
  std::string local;
  if (!ParseCaseText(buffer.str(), stem, out, &local)) {
    return Fail(error, path + ": " + local);
  }
  out->path = path;
  return true;
}

bool LoadCorpusDir(const std::string& dir, std::vector<ConformanceCase>* out,
                   std::string* error) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Fail(error, dir + ": " + ec.message());
  }
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".data") {
      paths.push_back(entry.path().string());
    }
  }
  // Deterministic order regardless of directory enumeration order.
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    return Fail(error, dir + ": no .data conformance cases");
  }
  out->clear();
  out->reserve(paths.size());
  for (const std::string& path : paths) {
    ConformanceCase c;
    if (!LoadCaseFile(path, &c, error)) {
      return false;
    }
    out->push_back(std::move(c));
  }
  return true;
}

}  // namespace conf
}  // namespace bvf
