// Verifier explorer: walks a program through the verifier with the verbose
// per-instruction state dump (the `bpf_verifier.log` experience), then shows
// the rewritten instruction stream before and after BVF's sanitation pass —
// the Fig. 5 transformation made visible.

#include <cstdio>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

int main() {
  using namespace bpf;

  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);

  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 64;
  def.max_entries = 2;
  const int map_fd = bpf.MapCreate(def);

  // A program with some range-analysis meat: masked variable offset into the
  // map value, a bounds-refining branch, and a helper call.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);         // r6 = ctx->r15 (scalar)
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 5);
  b.And(kR6, 31);                       // r6 in [0, 31]
  b.Mov(kR7, kR0);
  b.Add(kR7, kR6);                      // map_value + [0,31]
  b.Load(kSizeDw, kR8, kR7, 0);         // max 31+8 <= 64: in bounds
  b.Store(kSizeDw, kR0, kR8, 8);
  b.RetImm(0);
  const Program prog = b.Build();

  // 1. Verbose verification (no instrumentation) to see the state tracking.
  {
    VerifierEnv env;
    env.maps = &kernel.maps();
    env.btf = &kernel.btf();
    env.version = kernel.version();
    env.bugs = kernel.bugs();
    env.map_obj_addr = [&](int id) {
      Map* map = kernel.maps().Find(id);
      return map != nullptr ? map->obj_addr() : 0ull;
    };
    env.btf_obj_addr = [&](int id) { return kernel.BtfObjAddr(id); };
    env.verbose_log = true;
    const VerifierResult result = VerifyProgram(prog, env);
    printf("=== verifier log (err=%d) ===\n%s\n", result.err, result.log.c_str());
    printf("stats: %u insns walked, peak %u pending states, %u pruned\n\n",
           result.insns_processed, result.peak_states, result.states_pruned);
  }

  // 2. The sanitation rewrite, before vs after.
  {
    BpfAsan::Register(kernel);
    bvf::Sanitizer sanitizer;
    bpf.set_instrument(sanitizer.Hook());
    const int fd = bpf.ProgLoad(prog);
    const LoadedProgram* loaded = bpf.FindProg(fd);
    printf("=== original (%zu insns) ===\n%s\n", prog.size(), prog.Disassemble().c_str());
    printf("=== sanitized (%zu insns; '>' marks injected checks) ===\n",
           loaded->prog.insns.size());
    for (size_t i = 0; i < loaded->prog.insns.size(); ++i) {
      printf("%c %3zu: %s\n", loaded->aux[i].rewritten ? '>' : ' ', i,
             Disassemble(loaded->prog.insns[i]).c_str());
    }
    const bvf::SanitizerStats& stats = sanitizer.stats();
    printf("\nsanitizer: %zu mem sites instrumented, %zu skipped via the R10 reduction, "
           "%zu alu checks, %.2fx footprint\n",
           stats.mem_sites, stats.skipped_fp, stats.alu_sites, stats.Footprint());
    const ExecResult exec = bpf.ProgTestRun(fd);
    printf("test run: r0=%llu err=%d (%llu insns)\n",
           static_cast<unsigned long long>(exec.r0), exec.err,
           static_cast<unsigned long long>(exec.insns_executed));
  }
  return 0;
}
