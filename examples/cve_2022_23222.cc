// Reproduces CVE-2022-23222 (paper Listing 1): the verifier of pre-5.16
// kernels allowed ALU on nullable map-value pointers, so the null branch of a
// later check is entered with a non-zero (garbage) pointer.
//
// The demo loads the same exploit program against:
//   1. a fixed kernel             -> the verifier rejects it;
//   2. the vulnerable kernel      -> it loads, and native execution silently
//                                    dereferences the bad pointer;
//   3. the vulnerable kernel with BVF's sanitation -> the dispatch check
//                                    fires a bpf-asan report (indicator #1).

#include <cstdio>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace {

using namespace bpf;

Program ExploitProgram(int map_fd) {
  // Simplified Listing 1: lookup (guaranteed miss) -> r0 += 8 (the missing
  // check) -> "null check" -> dereference on the believed-non-null branch.
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 0x5eed);  // key never inserted
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  b.Add(kR0, 8);                 // ALU on PTR_TO_MAP_VALUE_OR_NULL
  b.JmpIf(kJmpJeq, kR0, 0, 2);   // at runtime r0 == 8, so "non-null" path taken
  b.StoreImm(kSizeDw, kR0, 0, 0x41414141);  // out-of-bounds write primitive
  b.Load(kSizeDw, kR8, kR0, 0);
  b.RetImm(0);
  return b.Build();
}

int CreateMap(Bpf& bpf) {
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 8;
  def.value_size = 16;
  def.max_entries = 8;
  return bpf.MapCreate(def);
}

}  // namespace

int main() {
  printf("=== CVE-2022-23222: ALU on nullable pointers ===\n");

  // 1. Fixed kernel: rejected.
  {
    Kernel kernel(KernelVersion::kV5_15, BugConfig::None());
    Bpf bpf(kernel);
    const int map_fd = CreateMap(bpf);
    VerifierResult result;
    const int err = bpf.ProgLoad(ExploitProgram(map_fd), &result);
    printf("\n[fixed kernel]  ProgLoad -> %d\n", err);
    printf("verifier log:\n%s", result.log.c_str());
  }

  // 2. Vulnerable kernel, no sanitation: loads and runs; the bad access is
  //    invisible (it lands in the unmapped null page -> an oops at best).
  {
    BugConfig bugs;
    bugs.cve_2022_23222 = true;
    Kernel kernel(KernelVersion::kV5_15, bugs);
    Bpf bpf(kernel);
    const int map_fd = CreateMap(bpf);
    const int fd = bpf.ProgLoad(ExploitProgram(map_fd));
    printf("\n[vulnerable kernel, no sanitation]  ProgLoad -> %d (loaded!)\n", fd);
    bpf.ProgTestRun(fd);
    printf("reports after native execution:\n");
    for (const KernelReport& report : kernel.reports().reports()) {
      printf("  %s | %s\n", report.Signature().c_str(), report.details.c_str());
    }
  }

  // 3. Vulnerable kernel with BVF sanitation: indicator #1 fires.
  {
    BugConfig bugs;
    bugs.cve_2022_23222 = true;
    Kernel kernel(KernelVersion::kV5_15, bugs);
    Bpf bpf(kernel);
    BpfAsan::Register(kernel);
    bvf::Sanitizer sanitizer;
    bpf.set_instrument(sanitizer.Hook());
    const int map_fd = CreateMap(bpf);
    const int fd = bpf.ProgLoad(ExploitProgram(map_fd));
    printf("\n[vulnerable kernel + BVF sanitation]  ProgLoad -> %d\n", fd);
    const LoadedProgram* prog = bpf.FindProg(fd);
    printf("sanitation inflated the program from 12 to %zu insns\n", prog->prog.insns.size());
    bpf.ProgTestRun(fd);
    printf("bpf-asan reports (indicator #1):\n");
    for (const KernelReport& report : kernel.reports().reports()) {
      printf("  %s | %s\n", report.Signature().c_str(), report.details.c_str());
    }
  }
  return 0;
}
