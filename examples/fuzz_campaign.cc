// A small BVF campaign against a kernel carrying every Table 2 bug:
// structured generation -> verify (+ sanitize) -> execute/attach/drive ->
// oracle -> triage. Prints the bug report list the way a real campaign's
// triage queue looks.
//
// Usage: fuzz_campaign [iterations] [seed] [--analysis]
//
// With --analysis, the first finding's regenerated trigger is run through the
// static-analysis passes: CFG dump, lints, liveness, and the per-instruction
// abstract-claim vs concrete-witness diff (indicator #3's view of the case).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/fuzzer.h"
#include "src/core/repro.h"
#include "src/core/structured_gen.h"

int main(int argc, char** argv) {
  using namespace bvf;

  bool analysis = false;
  uint64_t positional[2] = {3000, 1};  // iterations, seed
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--analysis") == 0) {
      analysis = true;
    } else if (npos < 2) {
      positional[npos++] = strtoull(argv[i], nullptr, 10);
    }
  }

  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = positional[0];
  options.seed = positional[1];

  printf("BVF campaign: %" PRIu64 " programs against %s with %d injected bugs (seed %" PRIu64
         ")\n",
         options.iterations, bpf::KernelVersionName(options.version), options.bugs.Count(),
         options.seed);

  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();

  printf("\ncampaign summary\n");
  printf("  generated:       %" PRIu64 "\n", stats.iterations);
  printf("  accepted:        %" PRIu64 " (%.1f%%)\n", stats.accepted,
         100 * stats.AcceptanceRate());
  printf("  executions:      %" PRIu64 "\n", stats.exec_runs);
  printf("  coverage:        %zu verifier branches\n", stats.final_coverage);
  printf("  sanitizer:       %zu mem sites, %zu alu checks, %.2fx footprint\n",
         stats.sanitizer.mem_sites, stats.sanitizer.alu_sites, stats.sanitizer.Footprint());

  printf("\ntriage queue (%zu unique findings)\n", stats.findings.size());
  for (const Finding& finding : stats.findings) {
    printf("  indicator#%d  @%-6" PRIu64 " %s\n", finding.indicator, finding.iteration,
           finding.signature.c_str());
    printf("               triaged: %s\n", KnownBugName(finding.triaged));
  }

  // Triage support: regenerate the first indicator-#1 trigger (campaigns are
  // deterministic) and minimize it to a near-guilty-instruction reproducer.
  // With --analysis, also run the static-analysis passes over the trigger.
  for (const Finding& finding : stats.findings) {
    if (finding.indicator != 1 && !analysis) {
      continue;
    }
    StructuredGenerator regen(options.version);
    bpf::Rng rng(options.seed);
    FuzzCase trigger;
    bool found = false;
    for (uint64_t i = 1; i <= options.iterations && !found; ++i) {
      trigger = regen.Generate(rng);
      found = ExecuteCase(trigger, options).count(finding.signature) != 0;
    }
    if (!found) {
      continue;  // the trigger needed corpus mutation state; try the next one
    }
    if (analysis) {
      printf("\nstatic analysis of trigger for \"%s\"\n", finding.signature.c_str());
      printf("%s", AnalyzeCase(trigger, options).c_str());
    }
    if (finding.indicator == 1) {
      const MinimizeResult reduced =
          MinimizeCase(trigger, finding.signature, options, 1500);
      printf("\nminimized reproducer for \"%s\"\n", finding.signature.c_str());
      printf("(%zu -> %zu insns after %d re-executions)\n", reduced.insns_before,
             reduced.insns_after, reduced.executions);
      printf("%s", reduced.reduced.prog.Disassemble().c_str());
    }
    break;
  }
  return 0;
}
