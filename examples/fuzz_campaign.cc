// A small BVF campaign against a kernel carrying every Table 2 bug:
// structured generation -> verify (+ sanitize) -> execute/attach/drive ->
// oracle -> triage. Prints the bug report list the way a real campaign's
// triage queue looks.
//
// Usage: fuzz_campaign [iterations] [seed] [--analysis]
//          [--fault-rate=F] [--confirm-runs=K]
//          [--checkpoint=PATH] [--checkpoint-every=N] [--resume=PATH]
//          [--stop-after=N] [--jobs=N] [--verdict-cache=on|off]
//          [--canonical-cache=on|off]
//          [--interp=decoded|legacy|jit] [--jit-oracle]
//          [--conformance=DIR]
//          [--metamorph] [--metamorph-k=K] [--smoke]
//          [--supervise] [--worker-retries=K] [--hang-timeout=MS]
//          [--quarantine=PATH] [--journal=PATH] [--replay-quarantine=PATH]
//
// Without --jobs the original serial engine runs. Any explicit --jobs=N
// (including N=1) selects the parallel sharded engine (src/core/parallel.h),
// whose results are bit-identical for every N — so a checkpoint written at
// --jobs=8 resumes at --jobs=1. --verdict-cache=on enables the digest-keyed
// verifier-verdict cache in either engine; --canonical-cache=on (requires the
// verdict cache) adds the canonical level, which serves committed rejections
// to alpha-equivalent program spellings without re-verifying. --interp
// selects the execution engine: decoded micro-op dispatch with the
// digest-keyed decode cache (the default), the native x86-64 JIT tier with
// the additional digest-keyed code cache, or the legacy
// instruction-at-a-time interpreter; all three are digest-identical, so the
// flag is a pure throughput switch (--interp=jit on a host without JIT
// support warns once and runs decoded). --jit-oracle turns on the Indicator
// #5 differential oracle: every accepted case is executed under both the
// decoded interpreter and the JIT on clean throwaway substrates, and any
// witness difference — a miscompile by construction — becomes a finding and
// a jit-divergence case outcome. --metamorph
// turns on the Indicator #4 metamorphic oracle: every accepted case is
// re-derived into --metamorph-k semantics-preserving variants and any
// base/variant divergence (verdict flip, witness mismatch, indicator
// asymmetry) becomes a finding and an escalated case outcome.
// --conformance=DIR runs the Indicator #6 conformance prologue before
// iteration 1: every `.data` expected-value case under DIR (src/conformance)
// is loaded through PROG_LOAD and executed on all three engines; a wrong r0
// or a surprising verdict becomes an indicator-6 finding, and accepted cases
// seed the mutation corpus. The prologue is deterministic and digest-stable
// across --jobs/--supervise; resumed campaigns skip it (the checkpoint
// already carries its findings and seeds).
//
// --supervise runs the epoch-shard discipline with crash-isolated worker
// *processes* (src/core/supervisor): a worker that crashes, hangs past
// --hang-timeout, or exits is re-forked with backoff; after --worker-retries
// consecutive failures the in-flight case is written to --quarantine (replay
// it later with --replay-quarantine) and its iteration skipped. --journal
// names a write-ahead findings/corpus journal that both the parallel and
// supervised engines fsync at every epoch barrier, so a kill between
// checkpoints cannot lose a recorded finding. Supervised results are
// digest-identical to --jobs=N in-process runs (same engine=parallel
// checkpoints, interchangeable both ways). Hidden test hooks
// --test-crash-at/--test-crash-mode/--test-crash-marker inject a
// deterministic worker failure for the smoke gate.
//
// With --analysis, the first finding's regenerated trigger is run through the
// static-analysis passes: CFG dump, lints, liveness, and the per-instruction
// abstract-claim vs concrete-witness diff (indicator #3's view of the case).
//
// With --smoke, the run acts as the robustness gate: it asserts that every
// iteration landed in a classified outcome bucket and (when confirmation is
// on) that every finding carries a confirmation verdict, then prints a
// `campaign-digest` line usable for resume bit-identity comparison. It also
// runs two small embedded parallel campaigns (jobs=1 vs jobs=2) and asserts
// their digests are identical — the job-count-invariance gate. Exits non-zero
// on any violation.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/fuzzer.h"
#include "src/core/parallel.h"
#include "src/core/repro.h"
#include "src/core/structured_gen.h"
#include "src/core/supervisor/supervisor.h"

int main(int argc, char** argv) {
  using namespace bvf;

  bool analysis = false;
  bool smoke = false;
  double fault_rate = 0.0;
  int confirm_runs = 0;
  const char* checkpoint_path = nullptr;
  uint64_t checkpoint_every = 0;
  const char* resume_path = nullptr;
  uint64_t stop_after = 0;
  int jobs = 1;
  bool jobs_given = false;  // explicit --jobs selects the parallel engine even at 1
  bool verdict_cache = false;
  bool canonical_cache = false;
  bpf::ExecEngine interp_engine = bpf::ExecEngine::kDecoded;
  bool jit_oracle = false;
  const char* conformance_dir = nullptr;
  bool metamorph = false;
  int metamorph_k = 2;
  bool supervise = false;
  int worker_retries = 3;
  int hang_timeout_ms = 30000;
  const char* quarantine_path = nullptr;
  const char* journal_path = nullptr;
  const char* replay_quarantine = nullptr;
  uint64_t test_crash_at = 0;
  int test_crash_mode = 0;
  const char* test_crash_marker = nullptr;
  uint64_t positional[2] = {3000, 1};  // iterations, seed
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--analysis") == 0) {
      analysis = true;
    } else if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<int>(strtol(argv[i] + 7, nullptr, 10));
      jobs_given = true;
    } else if (strncmp(argv[i], "--verdict-cache=", 16) == 0) {
      verdict_cache = strcmp(argv[i] + 16, "on") == 0;
    } else if (strncmp(argv[i], "--canonical-cache=", 18) == 0) {
      canonical_cache = strcmp(argv[i] + 18, "on") == 0;
    } else if (strncmp(argv[i], "--interp=", 9) == 0) {
      const char* engine = argv[i] + 9;
      interp_engine = strcmp(engine, "legacy") == 0 ? bpf::ExecEngine::kLegacy
                      : strcmp(engine, "jit") == 0  ? bpf::ExecEngine::kJit
                                                    : bpf::ExecEngine::kDecoded;
    } else if (strcmp(argv[i], "--jit-oracle") == 0) {
      jit_oracle = true;
    } else if (strncmp(argv[i], "--conformance=", 14) == 0) {
      conformance_dir = argv[i] + 14;
    } else if (strcmp(argv[i], "--metamorph") == 0) {
      metamorph = true;
    } else if (strncmp(argv[i], "--metamorph-k=", 14) == 0) {
      metamorph_k = static_cast<int>(strtol(argv[i] + 14, nullptr, 10));
    } else if (strncmp(argv[i], "--fault-rate=", 13) == 0) {
      fault_rate = strtod(argv[i] + 13, nullptr);
    } else if (strncmp(argv[i], "--confirm-runs=", 15) == 0) {
      confirm_runs = static_cast<int>(strtol(argv[i] + 15, nullptr, 10));
    } else if (strncmp(argv[i], "--checkpoint=", 13) == 0) {
      checkpoint_path = argv[i] + 13;
    } else if (strncmp(argv[i], "--checkpoint-every=", 19) == 0) {
      checkpoint_every = strtoull(argv[i] + 19, nullptr, 10);
    } else if (strncmp(argv[i], "--resume=", 9) == 0) {
      resume_path = argv[i] + 9;
    } else if (strncmp(argv[i], "--stop-after=", 13) == 0) {
      stop_after = strtoull(argv[i] + 13, nullptr, 10);
    } else if (strcmp(argv[i], "--supervise") == 0) {
      supervise = true;
    } else if (strncmp(argv[i], "--worker-retries=", 17) == 0) {
      worker_retries = static_cast<int>(strtol(argv[i] + 17, nullptr, 10));
    } else if (strncmp(argv[i], "--hang-timeout=", 15) == 0) {
      hang_timeout_ms = static_cast<int>(strtol(argv[i] + 15, nullptr, 10));
    } else if (strncmp(argv[i], "--quarantine=", 13) == 0) {
      quarantine_path = argv[i] + 13;
    } else if (strncmp(argv[i], "--journal=", 10) == 0) {
      journal_path = argv[i] + 10;
    } else if (strncmp(argv[i], "--replay-quarantine=", 20) == 0) {
      replay_quarantine = argv[i] + 20;
    } else if (strncmp(argv[i], "--test-crash-at=", 16) == 0) {
      test_crash_at = strtoull(argv[i] + 16, nullptr, 10);
    } else if (strncmp(argv[i], "--test-crash-mode=", 18) == 0) {
      test_crash_mode = static_cast<int>(strtol(argv[i] + 18, nullptr, 10));
    } else if (strncmp(argv[i], "--test-crash-marker=", 20) == 0) {
      test_crash_marker = argv[i] + 20;
    } else if (npos < 2) {
      positional[npos++] = strtoull(argv[i], nullptr, 10);
    }
  }

  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = positional[0];
  options.seed = positional[1];
  options.fault.probability = fault_rate;
  options.confirm_runs = confirm_runs;
  options.limits.wall_budget_ms = 2000;  // no case may hang the campaign
  if (checkpoint_path != nullptr) {
    options.checkpoint_path = checkpoint_path;
    options.checkpoint_every = checkpoint_every;
  }
  if (resume_path != nullptr) {
    options.resume_path = resume_path;
  }
  options.stop_after = stop_after;
  options.jobs = jobs;
  options.verdict_cache = verdict_cache;
  options.canonical_cache = canonical_cache && verdict_cache;
  options.interp_engine = interp_engine;
  options.jit_oracle = jit_oracle;
  if (conformance_dir != nullptr) {
    options.conformance_dir = conformance_dir;
  }
  options.metamorph = metamorph;
  options.metamorph_k = metamorph_k;
  options.worker_retries = worker_retries;
  options.hang_timeout_ms = hang_timeout_ms;
  if (quarantine_path != nullptr) {
    options.quarantine_path = quarantine_path;
  }
  if (journal_path != nullptr) {
    options.journal_path = journal_path;
  }
  options.test_crash_at = test_crash_at;
  options.test_crash_mode = test_crash_mode;
  if (test_crash_marker != nullptr) {
    options.test_crash_marker = test_crash_marker;
  }

  // Quarantine replay: no campaign, just re-execute each quarantined case
  // through the deterministic repro path and report its signatures.
  if (replay_quarantine != nullptr) {
    std::vector<QuarantineRecord> records;
    std::string error;
    if (LoadQuarantine(replay_quarantine, &records, &error) != 0) {
      fprintf(stderr, "replay failed: %s\n", error.c_str());
      return 2;
    }
    printf("replaying %zu quarantined case(s) from %s\n", records.size(),
           replay_quarantine);
    for (const QuarantineRecord& record : records) {
      bool accepted = false;
      const std::set<std::string> sigs = ExecuteCase(record.the_case, options, &accepted);
      printf("  iteration %" PRIu64 " (%d failed attempts, signal/code %d): %s, %zu "
             "signature(s)\n",
             record.iteration, record.attempts, record.signal_or_code,
             accepted ? "accepted" : "rejected", sigs.size());
      for (const std::string& sig : sigs) {
        printf("    %s\n", sig.c_str());
      }
    }
    return 0;
  }

  printf("BVF campaign: %" PRIu64 " programs against %s with %d injected bugs (seed %" PRIu64
         ")\n",
         options.iterations, bpf::KernelVersionName(options.version), options.bugs.Count(),
         options.seed);
  if (options.fault.Active()) {
    printf("  fault injection: p=%.3f on %d kernel fault points\n",
           options.fault.probability, bpf::kNumFaultPoints);
  }
  // Passing --jobs (even --jobs=1) opts into the parallel engine; this is what
  // lets a checkpoint taken at --jobs=8 resume at --jobs=1 (serial and
  // parallel checkpoints are intentionally incompatible — different RNG
  // models — so the engines never mix).
  const bool parallel_engine = jobs_given || jobs > 1;
  if (supervise) {
    printf("  supervised engine: %d worker process(es), epoch length %" PRIu64
           ", %d retries, %d ms hang timeout\n",
           jobs, options.epoch_len, options.worker_retries, options.hang_timeout_ms);
  } else if (parallel_engine) {
    printf("  parallel engine: %d jobs, epoch length %" PRIu64 "\n", jobs,
           options.epoch_len);
  }

  StructuredGenerator generator(options.version);
  CampaignStats stats;
  if (supervise) {
    SupervisedFuzzer fuzzer(generator, options);
    stats = fuzzer.Run();
  } else if (parallel_engine) {
    ParallelFuzzer fuzzer(generator, options);
    stats = fuzzer.Run();
  } else {
    Fuzzer fuzzer(generator, options);
    stats = fuzzer.Run();
  }

  if (!stats.resume_error.empty()) {
    fprintf(stderr, "resume failed: %s\n", stats.resume_error.c_str());
    return 2;
  }
  if (stats.resumed_from != 0) {
    printf("  resumed at iteration %" PRIu64 "\n", stats.resumed_from);
  }

  printf("\ncampaign summary\n");
  printf("  generated:       %" PRIu64 "\n", stats.iterations);
  printf("  accepted:        %" PRIu64 " (%.1f%%)\n", stats.accepted,
         100 * stats.AcceptanceRate());
  printf("  executions:      %" PRIu64 " (%" PRIu64 " failed)\n", stats.exec_runs,
         stats.exec_failures);
  printf("  coverage:        %zu verifier branches\n", stats.final_coverage);
  printf("  sanitizer:       %zu mem sites, %zu alu checks, %.2fx footprint\n",
         stats.sanitizer.mem_sites, stats.sanitizer.alu_sites, stats.sanitizer.Footprint());
  printf("  faults injected: %" PRIu64 "\n", stats.fault_injected);
  if (verdict_cache) {
    printf("  verdict cache:   %" PRIu64 " hits / %" PRIu64 " misses (%.1f%% hit rate)\n",
           stats.verdict_cache_hits, stats.verdict_cache_misses,
           100 * stats.VerdictCacheHitRate());
  }
  if (verdict_cache && canonical_cache) {
    printf("  canonical cache: %" PRIu64 " hits / %" PRIu64 " misses (%.1f%% hit rate)\n",
           stats.canonical_cache_hits, stats.canonical_cache_misses,
           100 * stats.CanonicalCacheHitRate());
  }
  if (interp_engine != bpf::ExecEngine::kLegacy) {
    printf("  decode cache:    %" PRIu64 " hits / %" PRIu64 " misses / %" PRIu64
           " evictions (%.1f%% hit rate)\n",
           stats.decode_cache_hits, stats.decode_cache_misses,
           stats.decode_cache_evictions, 100 * stats.DecodeCacheHitRate());
  }
  if (interp_engine == bpf::ExecEngine::kJit) {
    printf("  jit cache:       %" PRIu64 " hits / %" PRIu64 " misses / %" PRIu64
           " evictions (%.1f%% hit rate)\n",
           stats.jit_cache_hits, stats.jit_cache_misses, stats.jit_cache_evictions,
           100 * stats.JitCacheHitRate());
  }
  if (jit_oracle) {
    uint64_t jit_divergences = 0;
    for (const Finding& finding : stats.findings) {
      jit_divergences += finding.indicator == 5 ? 1 : 0;
    }
    printf("  jit oracle:      %s; %" PRIu64 " divergence finding(s)\n",
           bpf::JitAvailable() ? "decoded-vs-jit compare on accepted cases"
                               : "inactive (jit unavailable on this host)",
           jit_divergences);
  }
  if (!options.conformance_dir.empty()) {
    printf("  conformance:     %" PRIu64 " cases: %" PRIu64 " passed, %" PRIu64
           " mismatch(es), %" PRIu64 " verdict gap(s); %" PRIu64 " seeded into corpus\n",
           stats.conf_cases, stats.conf_passed, stats.conf_mismatches, stats.conf_rejects,
           stats.conf_seeded);
  }
  if (metamorph) {
    printf("  metamorph:       %" PRIu64 " bases, %" PRIu64 " variants; divergences %" PRIu64
           " verdict / %" PRIu64 " witness / %" PRIu64 " sanitizer\n",
           stats.metamorph_bases, stats.metamorph_variants,
           stats.metamorph_verdict_divergences, stats.metamorph_witness_divergences,
           stats.metamorph_sanitizer_divergences);
  }
  printf("  panics contained:%" PRIu64 " (%" PRIu64 " substrate rebuilds)\n", stats.panics,
         stats.substrate_rebuilds);
  if (supervise) {
    printf("  supervisor:      %" PRIu64 " crashes / %" PRIu64 " hangs / %" PRIu64
           " exits; %" PRIu64 " restarts, %" PRIu64 " quarantined, %" PRIu64
           " epochs degraded\n",
           stats.worker_crashes, stats.worker_hangs, stats.worker_exits,
           stats.worker_restarts, stats.quarantined_cases, stats.epochs_abandoned);
    for (const Finding& crash : stats.crash_findings) {
      printf("  worker-crash:    %s\n", crash.signature.c_str());
    }
  }
  printf("  outcomes:\n");
  for (const auto& [outcome, count] : stats.outcomes) {
    printf("    %-18s %" PRIu64 "\n", CaseOutcomeName(outcome), count);
  }

  printf("\ntriage queue (%zu unique findings)\n", stats.findings.size());
  for (const Finding& finding : stats.findings) {
    printf("  indicator#%d  @%-6" PRIu64 " %s\n", finding.indicator, finding.iteration,
           finding.signature.c_str());
    printf("               triaged: %s", KnownBugName(finding.triaged));
    if (finding.confirmation != Confirmation::kUnconfirmed) {
      printf("  [%s %d/%d]", ConfirmationName(finding.confirmation), finding.confirm_hits,
             finding.confirm_runs);
    }
    printf("\n");
  }

  if (smoke) {
    // Robustness gate: every iteration classified, nothing unclassified, and
    // (with confirmation on) every finding carries a verdict.
    int failures = 0;
    uint64_t total_outcomes = 0;
    for (const auto& [outcome, count] : stats.outcomes) {
      total_outcomes += count;
    }
    const auto unclassified = stats.outcomes.find(CaseOutcome::kUnclassified);
    if (unclassified != stats.outcomes.end() && unclassified->second != 0) {
      fprintf(stderr, "SMOKE FAIL: %" PRIu64 " unclassified outcomes\n",
              unclassified->second);
      ++failures;
    }
    if (total_outcomes != stats.iterations) {
      fprintf(stderr,
              "SMOKE FAIL: outcome buckets sum to %" PRIu64 " but %" PRIu64
              " iterations ran\n",
              total_outcomes, stats.iterations);
      ++failures;
    }
    if (options.confirm_runs > 0) {
      for (const Finding& finding : stats.findings) {
        if (finding.confirmation == Confirmation::kUnconfirmed) {
          fprintf(stderr, "SMOKE FAIL: unconfirmed finding %s\n",
                  finding.signature.c_str());
          ++failures;
        }
      }
    }
    // Job-count-invariance gate: a small embedded parallel campaign must
    // produce the same digest at jobs=1 and jobs=2.
    {
      CampaignOptions par = options;
      par.iterations = 200;
      par.stop_after = 0;
      par.checkpoint_path.clear();
      par.checkpoint_every = 0;
      par.resume_path.clear();
      std::string digests[2];
      for (int j = 0; j < 2; ++j) {
        par.jobs = j + 1;
        StructuredGenerator par_gen(par.version);
        ParallelFuzzer par_fuzzer(par_gen, par);
        digests[j] = StatsDigest(par_fuzzer.Run());
      }
      if (digests[0] != digests[1]) {
        fprintf(stderr, "SMOKE FAIL: parallel digest differs across job counts (%s vs %s)\n",
                digests[0].c_str(), digests[1].c_str());
        ++failures;
      } else {
        printf("parallel-invariance-digest %s\n", digests[0].c_str());
      }
    }
    printf("\ncampaign-digest %s\n", StatsDigest(stats).c_str());
    if (failures != 0) {
      return 1;
    }
    printf("smoke: all %" PRIu64 " iterations classified, %zu findings confirmed\n",
           stats.iterations, stats.findings.size());
    return 0;
  }

  // Triage support: regenerate the first indicator-#1 trigger (campaigns are
  // deterministic) and minimize it to a near-guilty-instruction reproducer.
  // With --analysis, also run the static-analysis passes over the trigger.
  for (const Finding& finding : stats.findings) {
    if (finding.indicator != 1 && !analysis) {
      continue;
    }
    StructuredGenerator regen(options.version);
    bpf::Rng rng(options.seed);
    FuzzCase trigger;
    bool found = false;
    for (uint64_t i = 1; i <= options.iterations && !found; ++i) {
      trigger = regen.Generate(rng);
      found = ExecuteCase(trigger, options).count(finding.signature) != 0;
    }
    if (!found) {
      continue;  // the trigger needed corpus mutation state; try the next one
    }
    if (analysis) {
      printf("\nstatic analysis of trigger for \"%s\"\n", finding.signature.c_str());
      printf("%s", AnalyzeCase(trigger, options).c_str());
    }
    if (finding.indicator == 1) {
      const MinimizeResult reduced =
          MinimizeCase(trigger, finding.signature, options, 1500);
      printf("\nminimized reproducer for \"%s\"\n", finding.signature.c_str());
      printf("(%zu -> %zu insns after %d re-executions)\n", reduced.insns_before,
             reduced.insns_after, reduced.executions);
      printf("%s", reduced.reduced.prog.Disassemble().c_str());
    }
    break;
  }
  return 0;
}
