// Quickstart: assemble an eBPF program, create a map, load the program
// through the verifier, run it, and read the map back from "user space".
//
// The program is the classic per-event counter: look up slot 0 of an array
// map and increment it (the Table 1 workflow of the paper, plus a store).

#include <cstdio>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"

int main() {
  using namespace bpf;

  // A simulated kernel: bpf-next feature level, no injected bugs.
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);

  // BPF_MAP_CREATE: one-slot array of a single u64 counter.
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 1;
  const int map_fd = bpf.MapCreate(def);
  printf("created array map: fd=%d\n", map_fd);

  // Assemble:
  //   key = 0 on the stack; v = map_lookup_elem(map, &key);
  //   if (v) __sync_fetch_and_add(v, 1);
  //   return 0;
  ProgramBuilder b(ProgType::kSocketFilter);
  b.StoreImm(kSizeW, kR10, -4, 0);        // key = 0
  b.LdMapFd(kR1, map_fd);                 // r1 = map
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);                         // r2 = &key
  b.Call(kHelperMapLookupElem);           // r0 = lookup(map, &key)
  b.JmpIf(kJmpJeq, kR0, 0, 3);            // if (!r0) skip
  b.Mov(kR1, 1);
  b.Raw(AtomicOp(kSizeDw, kR0, kR1, 0, kAtomicAdd));  // *(u64*)r0 += 1
  b.Mov(kR0, 0);
  b.RetImm(0);
  const Program prog = b.Build();

  printf("\nprogram (%zu insns):\n%s", prog.size(), prog.Disassemble().c_str());

  // BPF_PROG_LOAD: encoding checks, CFG check, abstract interpretation,
  // rewrite phase.
  VerifierResult result;
  const int prog_fd = bpf.ProgLoad(prog, &result);
  if (prog_fd < 0) {
    printf("\nverifier rejected the program (err=%d):\n%s\n", prog_fd, result.log.c_str());
    return 1;
  }
  printf("\nverifier accepted: %u insns walked, %u states pruned\n", result.insns_processed,
         result.states_pruned);

  // BPF_PROG_TEST_RUN a few times.
  for (int run = 0; run < 5; ++run) {
    const ExecResult exec = bpf.ProgTestRun(prog_fd, /*pkt_len=*/64, /*seed=*/run);
    printf("test run %d: r0=%llu, %llu insns executed\n", run,
           static_cast<unsigned long long>(exec.r0),
           static_cast<unsigned long long>(exec.insns_executed));
  }

  // Read the counter back through the map syscall.
  const uint32_t key = 0;
  uint64_t counter = 0;
  bpf.MapLookupElem(map_fd, &key, &counter);
  printf("\nuser space reads counter = %llu (expected 5)\n",
         static_cast<unsigned long long>(counter));
  return counter == 5 ? 0 : 1;
}
