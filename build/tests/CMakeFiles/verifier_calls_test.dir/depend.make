# Empty dependencies file for verifier_calls_test.
# This may be replaced when dependencies are built.
