file(REMOVE_RECURSE
  "CMakeFiles/verifier_calls_test.dir/verifier_calls_test.cc.o"
  "CMakeFiles/verifier_calls_test.dir/verifier_calls_test.cc.o.d"
  "verifier_calls_test"
  "verifier_calls_test.pdb"
  "verifier_calls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_calls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
