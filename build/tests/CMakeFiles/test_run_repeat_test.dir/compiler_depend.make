# Empty compiler generated dependencies file for test_run_repeat_test.
# This may be replaced when dependencies are built.
