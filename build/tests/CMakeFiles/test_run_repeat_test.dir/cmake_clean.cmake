file(REMOVE_RECURSE
  "CMakeFiles/test_run_repeat_test.dir/test_run_repeat_test.cc.o"
  "CMakeFiles/test_run_repeat_test.dir/test_run_repeat_test.cc.o.d"
  "test_run_repeat_test"
  "test_run_repeat_test.pdb"
  "test_run_repeat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_repeat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
