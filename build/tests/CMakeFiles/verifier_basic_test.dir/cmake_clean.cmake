file(REMOVE_RECURSE
  "CMakeFiles/verifier_basic_test.dir/verifier_basic_test.cc.o"
  "CMakeFiles/verifier_basic_test.dir/verifier_basic_test.cc.o.d"
  "verifier_basic_test"
  "verifier_basic_test.pdb"
  "verifier_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
