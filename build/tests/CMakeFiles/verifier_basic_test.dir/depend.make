# Empty dependencies file for verifier_basic_test.
# This may be replaced when dependencies are built.
