file(REMOVE_RECURSE
  "CMakeFiles/verifier_mem_test.dir/verifier_mem_test.cc.o"
  "CMakeFiles/verifier_mem_test.dir/verifier_mem_test.cc.o.d"
  "verifier_mem_test"
  "verifier_mem_test.pdb"
  "verifier_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
