# Empty compiler generated dependencies file for verifier_mem_test.
# This may be replaced when dependencies are built.
