file(REMOVE_RECURSE
  "CMakeFiles/verifier_edge_test.dir/verifier_edge_test.cc.o"
  "CMakeFiles/verifier_edge_test.dir/verifier_edge_test.cc.o.d"
  "verifier_edge_test"
  "verifier_edge_test.pdb"
  "verifier_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
