# Empty compiler generated dependencies file for verifier_edge_test.
# This may be replaced when dependencies are built.
