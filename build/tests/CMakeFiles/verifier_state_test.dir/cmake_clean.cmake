file(REMOVE_RECURSE
  "CMakeFiles/verifier_state_test.dir/verifier_state_test.cc.o"
  "CMakeFiles/verifier_state_test.dir/verifier_state_test.cc.o.d"
  "verifier_state_test"
  "verifier_state_test.pdb"
  "verifier_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
