file(REMOVE_RECURSE
  "CMakeFiles/kernel_substrate_test.dir/kernel_substrate_test.cc.o"
  "CMakeFiles/kernel_substrate_test.dir/kernel_substrate_test.cc.o.d"
  "kernel_substrate_test"
  "kernel_substrate_test.pdb"
  "kernel_substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
