# Empty dependencies file for disasm_roundtrip_test.
# This may be replaced when dependencies are built.
