file(REMOVE_RECURSE
  "CMakeFiles/disasm_roundtrip_test.dir/disasm_roundtrip_test.cc.o"
  "CMakeFiles/disasm_roundtrip_test.dir/disasm_roundtrip_test.cc.o.d"
  "disasm_roundtrip_test"
  "disasm_roundtrip_test.pdb"
  "disasm_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disasm_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
