# Empty dependencies file for bug_injection_test.
# This may be replaced when dependencies are built.
