file(REMOVE_RECURSE
  "CMakeFiles/bug_injection_test.dir/bug_injection_test.cc.o"
  "CMakeFiles/bug_injection_test.dir/bug_injection_test.cc.o.d"
  "bug_injection_test"
  "bug_injection_test.pdb"
  "bug_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
