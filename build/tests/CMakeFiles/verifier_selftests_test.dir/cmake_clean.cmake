file(REMOVE_RECURSE
  "CMakeFiles/verifier_selftests_test.dir/verifier_selftests_test.cc.o"
  "CMakeFiles/verifier_selftests_test.dir/verifier_selftests_test.cc.o.d"
  "verifier_selftests_test"
  "verifier_selftests_test.pdb"
  "verifier_selftests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_selftests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
