# Empty compiler generated dependencies file for insn_test.
# This may be replaced when dependencies are built.
