# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/verifier_basic_test[1]_include.cmake")
include("/root/repo/build/tests/bug_injection_test[1]_include.cmake")
include("/root/repo/build/tests/tnum_test[1]_include.cmake")
include("/root/repo/build/tests/insn_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_substrate_test[1]_include.cmake")
include("/root/repo/build/tests/maps_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_property_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_mem_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_calls_test[1]_include.cmake")
include("/root/repo/build/tests/sanitizer_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_state_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_selftests_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/disasm_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/repro_test[1]_include.cmake")
include("/root/repo/build/tests/test_run_repeat_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_edge_test[1]_include.cmake")
