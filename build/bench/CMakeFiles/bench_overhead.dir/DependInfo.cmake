
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_overhead.cc" "bench/CMakeFiles/bench_overhead.dir/bench_overhead.cc.o" "gcc" "bench/CMakeFiles/bench_overhead.dir/bench_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bvf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitizer/CMakeFiles/bvf_sanitizer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bpf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/bpf_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/bpf_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/maps/CMakeFiles/bpf_maps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bpf_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
