file(REMOVE_RECURSE
  "CMakeFiles/bench_acceptance.dir/bench_acceptance.cc.o"
  "CMakeFiles/bench_acceptance.dir/bench_acceptance.cc.o.d"
  "bench_acceptance"
  "bench_acceptance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
