# Empty dependencies file for bench_acceptance.
# This may be replaced when dependencies are built.
