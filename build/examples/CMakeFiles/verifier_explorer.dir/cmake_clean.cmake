file(REMOVE_RECURSE
  "CMakeFiles/verifier_explorer.dir/verifier_explorer.cc.o"
  "CMakeFiles/verifier_explorer.dir/verifier_explorer.cc.o.d"
  "verifier_explorer"
  "verifier_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
