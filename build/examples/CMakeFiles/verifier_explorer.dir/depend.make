# Empty dependencies file for verifier_explorer.
# This may be replaced when dependencies are built.
