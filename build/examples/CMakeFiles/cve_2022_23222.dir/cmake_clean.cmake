file(REMOVE_RECURSE
  "CMakeFiles/cve_2022_23222.dir/cve_2022_23222.cc.o"
  "CMakeFiles/cve_2022_23222.dir/cve_2022_23222.cc.o.d"
  "cve_2022_23222"
  "cve_2022_23222.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_2022_23222.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
