# Empty compiler generated dependencies file for cve_2022_23222.
# This may be replaced when dependencies are built.
