file(REMOVE_RECURSE
  "CMakeFiles/bpf_ebpf.dir/insn.cc.o"
  "CMakeFiles/bpf_ebpf.dir/insn.cc.o.d"
  "CMakeFiles/bpf_ebpf.dir/program.cc.o"
  "CMakeFiles/bpf_ebpf.dir/program.cc.o.d"
  "libbpf_ebpf.a"
  "libbpf_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
