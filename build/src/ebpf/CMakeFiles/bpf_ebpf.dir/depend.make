# Empty dependencies file for bpf_ebpf.
# This may be replaced when dependencies are built.
