file(REMOVE_RECURSE
  "libbpf_ebpf.a"
)
