
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verifier/bug_registry.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/bug_registry.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/bug_registry.cc.o.d"
  "/root/repo/src/verifier/check_alu.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_alu.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_alu.cc.o.d"
  "/root/repo/src/verifier/check_call.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_call.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_call.cc.o.d"
  "/root/repo/src/verifier/check_jmp.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_jmp.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_jmp.cc.o.d"
  "/root/repo/src/verifier/check_mem.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_mem.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/check_mem.cc.o.d"
  "/root/repo/src/verifier/checker.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/checker.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/checker.cc.o.d"
  "/root/repo/src/verifier/ctx.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/ctx.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/ctx.cc.o.d"
  "/root/repo/src/verifier/fixup.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/fixup.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/fixup.cc.o.d"
  "/root/repo/src/verifier/helper_protos.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/helper_protos.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/helper_protos.cc.o.d"
  "/root/repo/src/verifier/kernel_version.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/kernel_version.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/kernel_version.cc.o.d"
  "/root/repo/src/verifier/reg_state.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/reg_state.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/reg_state.cc.o.d"
  "/root/repo/src/verifier/tnum.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/tnum.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/tnum.cc.o.d"
  "/root/repo/src/verifier/verifier_state.cc" "src/verifier/CMakeFiles/bpf_verifier.dir/verifier_state.cc.o" "gcc" "src/verifier/CMakeFiles/bpf_verifier.dir/verifier_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebpf/CMakeFiles/bpf_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bpf_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/maps/CMakeFiles/bpf_maps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
