src/verifier/CMakeFiles/bpf_verifier.dir/kernel_version.cc.o: \
 /root/repo/src/verifier/kernel_version.cc /usr/include/stdc-predef.h \
 /root/repo/src/verifier/kernel_version.h
