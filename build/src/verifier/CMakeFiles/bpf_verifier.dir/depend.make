# Empty dependencies file for bpf_verifier.
# This may be replaced when dependencies are built.
