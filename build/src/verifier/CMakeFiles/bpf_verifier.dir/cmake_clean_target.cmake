file(REMOVE_RECURSE
  "libbpf_verifier.a"
)
