file(REMOVE_RECURSE
  "CMakeFiles/bpf_verifier.dir/bug_registry.cc.o"
  "CMakeFiles/bpf_verifier.dir/bug_registry.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/check_alu.cc.o"
  "CMakeFiles/bpf_verifier.dir/check_alu.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/check_call.cc.o"
  "CMakeFiles/bpf_verifier.dir/check_call.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/check_jmp.cc.o"
  "CMakeFiles/bpf_verifier.dir/check_jmp.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/check_mem.cc.o"
  "CMakeFiles/bpf_verifier.dir/check_mem.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/checker.cc.o"
  "CMakeFiles/bpf_verifier.dir/checker.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/ctx.cc.o"
  "CMakeFiles/bpf_verifier.dir/ctx.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/fixup.cc.o"
  "CMakeFiles/bpf_verifier.dir/fixup.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/helper_protos.cc.o"
  "CMakeFiles/bpf_verifier.dir/helper_protos.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/kernel_version.cc.o"
  "CMakeFiles/bpf_verifier.dir/kernel_version.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/reg_state.cc.o"
  "CMakeFiles/bpf_verifier.dir/reg_state.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/tnum.cc.o"
  "CMakeFiles/bpf_verifier.dir/tnum.cc.o.d"
  "CMakeFiles/bpf_verifier.dir/verifier_state.cc.o"
  "CMakeFiles/bpf_verifier.dir/verifier_state.cc.o.d"
  "libbpf_verifier.a"
  "libbpf_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
