file(REMOVE_RECURSE
  "libbvf_sanitizer.a"
)
