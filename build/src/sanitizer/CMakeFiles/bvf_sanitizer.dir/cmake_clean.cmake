file(REMOVE_RECURSE
  "CMakeFiles/bvf_sanitizer.dir/asan_funcs.cc.o"
  "CMakeFiles/bvf_sanitizer.dir/asan_funcs.cc.o.d"
  "CMakeFiles/bvf_sanitizer.dir/instrument.cc.o"
  "CMakeFiles/bvf_sanitizer.dir/instrument.cc.o.d"
  "libbvf_sanitizer.a"
  "libbvf_sanitizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvf_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
