# Empty compiler generated dependencies file for bvf_sanitizer.
# This may be replaced when dependencies are built.
