file(REMOVE_RECURSE
  "libbpf_kernel.a"
)
