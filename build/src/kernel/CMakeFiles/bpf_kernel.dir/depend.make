# Empty dependencies file for bpf_kernel.
# This may be replaced when dependencies are built.
