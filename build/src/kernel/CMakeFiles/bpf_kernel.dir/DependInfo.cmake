
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/alloc.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/alloc.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/alloc.cc.o.d"
  "/root/repo/src/kernel/btf.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/btf.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/btf.cc.o.d"
  "/root/repo/src/kernel/coverage.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/coverage.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/coverage.cc.o.d"
  "/root/repo/src/kernel/kasan.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/kasan.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/kasan.cc.o.d"
  "/root/repo/src/kernel/lockdep.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/lockdep.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/lockdep.cc.o.d"
  "/root/repo/src/kernel/report.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/report.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/report.cc.o.d"
  "/root/repo/src/kernel/tracepoint.cc" "src/kernel/CMakeFiles/bpf_kernel.dir/tracepoint.cc.o" "gcc" "src/kernel/CMakeFiles/bpf_kernel.dir/tracepoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
