file(REMOVE_RECURSE
  "CMakeFiles/bpf_kernel.dir/alloc.cc.o"
  "CMakeFiles/bpf_kernel.dir/alloc.cc.o.d"
  "CMakeFiles/bpf_kernel.dir/btf.cc.o"
  "CMakeFiles/bpf_kernel.dir/btf.cc.o.d"
  "CMakeFiles/bpf_kernel.dir/coverage.cc.o"
  "CMakeFiles/bpf_kernel.dir/coverage.cc.o.d"
  "CMakeFiles/bpf_kernel.dir/kasan.cc.o"
  "CMakeFiles/bpf_kernel.dir/kasan.cc.o.d"
  "CMakeFiles/bpf_kernel.dir/lockdep.cc.o"
  "CMakeFiles/bpf_kernel.dir/lockdep.cc.o.d"
  "CMakeFiles/bpf_kernel.dir/report.cc.o"
  "CMakeFiles/bpf_kernel.dir/report.cc.o.d"
  "CMakeFiles/bpf_kernel.dir/tracepoint.cc.o"
  "CMakeFiles/bpf_kernel.dir/tracepoint.cc.o.d"
  "libbpf_kernel.a"
  "libbpf_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
