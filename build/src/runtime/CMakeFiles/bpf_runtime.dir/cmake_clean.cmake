file(REMOVE_RECURSE
  "CMakeFiles/bpf_runtime.dir/bpf_syscall.cc.o"
  "CMakeFiles/bpf_runtime.dir/bpf_syscall.cc.o.d"
  "CMakeFiles/bpf_runtime.dir/helpers.cc.o"
  "CMakeFiles/bpf_runtime.dir/helpers.cc.o.d"
  "CMakeFiles/bpf_runtime.dir/interpreter.cc.o"
  "CMakeFiles/bpf_runtime.dir/interpreter.cc.o.d"
  "CMakeFiles/bpf_runtime.dir/kernel.cc.o"
  "CMakeFiles/bpf_runtime.dir/kernel.cc.o.d"
  "libbpf_runtime.a"
  "libbpf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
