file(REMOVE_RECURSE
  "libbpf_runtime.a"
)
