# Empty compiler generated dependencies file for bpf_runtime.
# This may be replaced when dependencies are built.
