
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/bpf_syscall.cc" "src/runtime/CMakeFiles/bpf_runtime.dir/bpf_syscall.cc.o" "gcc" "src/runtime/CMakeFiles/bpf_runtime.dir/bpf_syscall.cc.o.d"
  "/root/repo/src/runtime/helpers.cc" "src/runtime/CMakeFiles/bpf_runtime.dir/helpers.cc.o" "gcc" "src/runtime/CMakeFiles/bpf_runtime.dir/helpers.cc.o.d"
  "/root/repo/src/runtime/interpreter.cc" "src/runtime/CMakeFiles/bpf_runtime.dir/interpreter.cc.o" "gcc" "src/runtime/CMakeFiles/bpf_runtime.dir/interpreter.cc.o.d"
  "/root/repo/src/runtime/kernel.cc" "src/runtime/CMakeFiles/bpf_runtime.dir/kernel.cc.o" "gcc" "src/runtime/CMakeFiles/bpf_runtime.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verifier/CMakeFiles/bpf_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/bpf_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/maps/CMakeFiles/bpf_maps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bpf_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
