file(REMOVE_RECURSE
  "CMakeFiles/bvf_core.dir/baselines.cc.o"
  "CMakeFiles/bvf_core.dir/baselines.cc.o.d"
  "CMakeFiles/bvf_core.dir/fuzzer.cc.o"
  "CMakeFiles/bvf_core.dir/fuzzer.cc.o.d"
  "CMakeFiles/bvf_core.dir/oracle.cc.o"
  "CMakeFiles/bvf_core.dir/oracle.cc.o.d"
  "CMakeFiles/bvf_core.dir/repro.cc.o"
  "CMakeFiles/bvf_core.dir/repro.cc.o.d"
  "CMakeFiles/bvf_core.dir/structured_gen.cc.o"
  "CMakeFiles/bvf_core.dir/structured_gen.cc.o.d"
  "libbvf_core.a"
  "libbvf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
