file(REMOVE_RECURSE
  "libbvf_core.a"
)
