
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/bvf_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/bvf_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/fuzzer.cc" "src/core/CMakeFiles/bvf_core.dir/fuzzer.cc.o" "gcc" "src/core/CMakeFiles/bvf_core.dir/fuzzer.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/bvf_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/bvf_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/repro.cc" "src/core/CMakeFiles/bvf_core.dir/repro.cc.o" "gcc" "src/core/CMakeFiles/bvf_core.dir/repro.cc.o.d"
  "/root/repo/src/core/structured_gen.cc" "src/core/CMakeFiles/bvf_core.dir/structured_gen.cc.o" "gcc" "src/core/CMakeFiles/bvf_core.dir/structured_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sanitizer/CMakeFiles/bvf_sanitizer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bpf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/bpf_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/bpf_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/maps/CMakeFiles/bpf_maps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bpf_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
