# Empty dependencies file for bvf_core.
# This may be replaced when dependencies are built.
