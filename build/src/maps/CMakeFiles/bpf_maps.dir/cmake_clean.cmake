file(REMOVE_RECURSE
  "CMakeFiles/bpf_maps.dir/map.cc.o"
  "CMakeFiles/bpf_maps.dir/map.cc.o.d"
  "libbpf_maps.a"
  "libbpf_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
