# Empty dependencies file for bpf_maps.
# This may be replaced when dependencies are built.
