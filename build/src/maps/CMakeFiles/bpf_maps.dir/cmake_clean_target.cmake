file(REMOVE_RECURSE
  "libbpf_maps.a"
)
