// The kcov-style coverage registry: site registration, hit tracking,
// per-run marks (fuzzer feedback), indexed groups, and the reset semantics
// campaigns rely on.

#include <gtest/gtest.h>

#include "src/kernel/coverage.h"

namespace bpf {
namespace {

// The registry is process-global; every test works against deltas.

TEST(CoverageTest, SiteRegistrationAndHits) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();
  const size_t before_sites = cov.site_count();
  const size_t before_hits = cov.hit_count();

  const int site = cov.RegisterSite("file.cc", 1);
  EXPECT_EQ(cov.site_count(), before_sites + 1);
  EXPECT_EQ(cov.hit_count(), before_hits);

  cov.Hit(site);
  EXPECT_EQ(cov.hit_count(), before_hits + 1);
  cov.Hit(site);  // idempotent for distinct-coverage counting
  EXPECT_EQ(cov.hit_count(), before_hits + 1);
}

TEST(CoverageTest, MarkRunTracksNewSites) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();
  const int a = cov.RegisterSite("file.cc", 10);
  const int b = cov.RegisterSite("file.cc", 11);

  cov.MarkRun();
  cov.Hit(a);
  cov.Hit(b);
  EXPECT_EQ(cov.NewSinceMark(), 2u);

  cov.MarkRun();
  cov.Hit(a);  // already covered: not new
  EXPECT_EQ(cov.NewSinceMark(), 0u);
}

TEST(CoverageTest, GroupsAreContiguousAndBounded) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();
  const size_t before_hits = cov.hit_count();
  const int base = cov.RegisterGroup("file.cc", 20, 8);
  cov.MarkRun();
  // The BVF_COV_IDX macro guards the range; Hit() itself trusts its input.
  cov.Hit(base);
  cov.Hit(base + 7);
  EXPECT_EQ(cov.hit_count(), before_hits + 2);
  EXPECT_EQ(cov.NewSinceMark(), 2u);
}

TEST(CoverageTest, ResetClearsHitsKeepsSites) {
  Coverage& cov = Coverage::Get();
  const int site = cov.RegisterSite("file.cc", 30);
  cov.Hit(site);
  const size_t sites = cov.site_count();
  cov.ResetHits();
  EXPECT_EQ(cov.hit_count(), 0u);
  EXPECT_EQ(cov.site_count(), sites);
}

TEST(CoverageTest, DisableSuppressesHits) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();
  const int site = cov.RegisterSite("file.cc", 40);
  cov.set_enabled(false);
  cov.Hit(site);
  EXPECT_EQ(cov.hit_count(), 0u);
  cov.set_enabled(true);
  cov.Hit(site);
  EXPECT_EQ(cov.hit_count(), 1u);
}

TEST(CoverageTest, CoveredSitesListsLocations) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();
  const int site = cov.RegisterSite("special_file.cc", 99);
  cov.Hit(site);
  bool found = false;
  for (const std::string& location : cov.CoveredSites()) {
    found |= location == "special_file.cc:99";
  }
  EXPECT_TRUE(found);
}

TEST(CoverageTest, MacroRegistersOnce) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();
  const size_t before_sites = cov.site_count();
  for (int i = 0; i < 5; ++i) {
    BVF_COV();
  }
  EXPECT_EQ(cov.site_count(), before_sites + 1);
  const size_t sites_after_single = cov.site_count();
  for (int i = 0; i < 3; ++i) {
    BVF_COV_IDX(4, i);
  }
  EXPECT_EQ(cov.site_count(), sites_after_single + 4);
  BVF_COV_IDX(4, 99);  // out of range: ignored, no crash
}

}  // namespace
}  // namespace bpf
