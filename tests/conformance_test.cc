// Conformance subsystem (DESIGN.md §15): the assembler round-trip property,
// the vendored corpus as a three-engine regression suite, negative parses of
// malformed corpus files, and the injected-JIT-miscompile proof that the
// expected-value oracle actually fires.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/conformance/asm.h"
#include "src/conformance/corpus.h"
#include "src/conformance/runner.h"
#include "src/core/fuzzer.h"
#include "src/ebpf/insn.h"
#include "src/runtime/jit_prog.h"

namespace bvf {
namespace conf {
namespace {

std::vector<ConformanceCase> LoadVendoredCorpus() {
  std::vector<ConformanceCase> corpus;
  std::string error;
  bool ok = LoadCorpusDir(BVF_CONFORMANCE_DIR, &corpus, &error);
  EXPECT_TRUE(ok) << error;
  return corpus;
}

// ---- Corpus loading ----

TEST(CorpusTest, VendoredCorpusLoadsAndIsBigEnough) {
  std::vector<ConformanceCase> corpus = LoadVendoredCorpus();
  EXPECT_GE(corpus.size(), 60u);
  // Deterministic ordering: sorted by path, so resume and parallel runs see
  // an identical sequence.
  for (size_t i = 1; i < corpus.size(); ++i) {
    EXPECT_LT(corpus[i - 1].path, corpus[i].path);
  }
  for (const ConformanceCase& c : corpus) {
    EXPECT_FALSE(c.insns.empty()) << c.name;
    EXPECT_TRUE(c.expect_reject || !c.name.empty()) << c.path;
  }
}

// ---- Satellite 1: assembler round-trip property ----
//
// For every golden-corpus program: disassembling the assembled instructions
// and re-assembling the text must reproduce the exact bytes. This pins the
// assembler grammar to the disassembler output for the whole vendored
// surface (ALU32/64, JMP/JMP32, MEM/MEMSX, endian spellings, ld_imm64,
// calls).

TEST(AsmRoundTripTest, DisassembleReassembleIsByteIdentical) {
  std::vector<ConformanceCase> corpus = LoadVendoredCorpus();
  ASSERT_FALSE(corpus.empty());
  for (const ConformanceCase& c : corpus) {
    std::string text;
    for (const bpf::Insn& insn : c.insns) {
      text += bpf::Disassemble(insn);
      text += '\n';
    }
    std::vector<bpf::Insn> reassembled;
    AsmError error;
    ASSERT_TRUE(AssembleProgram(text, &reassembled, &error))
        << c.name << ": " << error.Format() << "\n" << text;
    ASSERT_EQ(c.insns.size(), reassembled.size()) << c.name;
    for (size_t i = 0; i < c.insns.size(); ++i) {
      // Field-wise equality (Insn has tail padding, so memcmp would compare
      // uninitialized bytes).
      EXPECT_TRUE(c.insns[i] == reassembled[i])
          << c.name << " insn " << i << ": " << bpf::Disassemble(c.insns[i])
          << " vs " << bpf::Disassemble(reassembled[i]);
    }
  }
}

// ---- Satellite 2: full corpus × engines × sanitizers ----

void ExpectCorpusClean(const RunnerConfig& config) {
  std::vector<ConformanceCase> corpus = LoadVendoredCorpus();
  ASSERT_FALSE(corpus.empty());
  ConformanceRunner runner(config);
  std::vector<CaseResult> results;
  ConformanceRunner::Summary summary = runner.RunCorpus(corpus, &results);
  EXPECT_EQ(summary.cases, corpus.size());
  EXPECT_EQ(summary.mismatches, 0u);
  EXPECT_EQ(summary.rejects, 0u);
  EXPECT_EQ(summary.passed, summary.cases);
  for (const CaseResult& r : results) {
    EXPECT_TRUE(r.verdict == CaseVerdict::kPass ||
                r.verdict == CaseVerdict::kExpectedReject)
        << r.name << ": " << CaseVerdictName(r.verdict) << " — " << r.detail
        << "\n" << r.verifier_log;
    // Every engine that ran agrees: the runner folds disagreement into
    // kMismatch, so a clean verdict plus >1 run is the agreement proof.
    for (const EngineRun& run : r.runs) {
      if (run.ran && r.verdict == CaseVerdict::kPass) {
        EXPECT_EQ(run.err, 0) << r.name << ": " << run.abort_reason;
      }
    }
  }
}

TEST(ConformanceCorpusTest, AllCasesPassSanitizersOff) {
  RunnerConfig config;
  config.sanitize = false;
  ExpectCorpusClean(config);
}

TEST(ConformanceCorpusTest, AllCasesPassSanitizersOn) {
  RunnerConfig config;
  config.sanitize = true;
  ExpectCorpusClean(config);
}

TEST(ConformanceCorpusTest, PassesWithJitUnavailable) {
  bpf::SetJitForceUnavailableForTest(true);
  RunnerConfig config;
  ExpectCorpusClean(config);
  bpf::SetJitForceUnavailableForTest(false);
}

// ---- Satellite 2 (oracle proof): injected JIT miscompile is caught ----
//
// SetJitMiscompileForTest makes the JIT compute `dst + 0x7ef0` for 64-bit
// `dst += 0x7eef`. A corpus case exercising exactly that pattern must flip
// from kPass to kMismatch while the hook is set.

ConformanceCase MiscompileBaitCase() {
  ConformanceCase c;
  std::string error;
  EXPECT_TRUE(ParseCaseText("-- asm\n"
                            "r0 = 0\n"
                            "r0 += 0x7eef\n"
                            "exit\n"
                            "-- result\n"
                            "0x7eef\n",
                            "jit_miscompile_bait", &c, &error))
      << error;
  return c;
}

TEST(ConformanceOracleTest, InjectedJitMiscompileYieldsMismatch) {
  if (!bpf::JitAvailable()) {
    GTEST_SKIP() << "JIT unavailable on this host";
  }
  ConformanceRunner runner;
  const ConformanceCase bait = MiscompileBaitCase();

  CaseResult clean = runner.RunCase(bait);
  EXPECT_EQ(clean.verdict, CaseVerdict::kPass) << clean.detail;

  bpf::SetJitMiscompileForTest(true);
  CaseResult broken = runner.RunCase(bait);
  bpf::SetJitMiscompileForTest(false);

  EXPECT_EQ(broken.verdict, CaseVerdict::kMismatch) << broken.detail;
  EXPECT_NE(broken.detail.find("jit"), std::string::npos) << broken.detail;
}

TEST(ConformanceOracleTest, PrologueFilesConformanceMismatchFinding) {
  if (!bpf::JitAvailable()) {
    GTEST_SKIP() << "JIT unavailable on this host";
  }
  // Write a one-case corpus into the test temp dir and run the campaign
  // prologue over it with the miscompile hook set: the mismatch must surface
  // as a kConformanceMismatch finding with indicator #6.
  const std::string dir = ::testing::TempDir() + "/conf_miscompile_corpus";
  std::remove((dir + "/bait.data").c_str());
  ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));
  {
    std::ofstream os(dir + "/bait.data", std::ios::trunc);
    ASSERT_TRUE(os);
    os << "-- asm\nr0 = 0\nr0 += 0x7eef\nexit\n-- result\n0x7eef\n";
  }

  CampaignOptions options;
  options.conformance_dir = dir;
  options.confirm_runs = 0;
  CampaignStats stats;
  std::vector<FuzzCase> corpus;

  bpf::SetJitMiscompileForTest(true);
  const bool ok = RunConformancePrologue(options, stats, &corpus);
  bpf::SetJitMiscompileForTest(false);

  ASSERT_TRUE(ok) << stats.resume_error;
  EXPECT_EQ(stats.conf_cases, 1u);
  EXPECT_EQ(stats.conf_mismatches, 1u);
  ASSERT_EQ(stats.findings.size(), 1u);
  EXPECT_EQ(stats.findings[0].kind, bpf::ReportKind::kConformanceMismatch);
  EXPECT_EQ(stats.findings[0].indicator, 6);
  // Signatures carry the case name (the file stem).
  EXPECT_NE(stats.findings[0].signature.find("bait"), std::string::npos)
      << stats.findings[0].signature;
}

// ---- Satellite 3: EdgeSemanticsTest behaviors live in the corpus ----
//
// The interpreter edge semantics (shift masking, div/mod-by-zero, endian
// widths) are ported to .data cases; spot-check the ports exist and carry
// the right expected values so corpus edits can't silently drop them.

TEST(CorpusTest, EdgeSemanticsPortsPresent) {
  std::vector<ConformanceCase> corpus = LoadVendoredCorpus();
  auto find = [&](const std::string& name) -> const ConformanceCase* {
    for (const ConformanceCase& c : corpus) {
      if (c.name == name) {
        return &c;
      }
    }
    return nullptr;
  };
  struct Expect {
    const char* name;
    uint64_t r0;
  };
  const Expect kPorts[] = {
      {"alu64_lsh_reg_mask64", 0x1234},
      {"alu64_arsh_reg_mask127", ~0ull},
      {"alu32_lsh_mask32", 0x12345678},
      {"alu32_arsh_mask36", 0xf8000000},
      {"alu64_div_reg_zero", 0},
      {"alu64_mod_reg_zero", 0xdeadbeefcafef00dull},
      {"alu32_div_zero_reg", 0},
      {"alu32_mod_zero_trunc", 5},
      {"endian_be16", 0x0201},
      {"endian_be64", 0x0807060504030201ull},
      {"endian_le32", 0x55667788},
  };
  for (const Expect& e : kPorts) {
    const ConformanceCase* c = find(e.name);
    ASSERT_NE(c, nullptr) << e.name << " missing from corpus";
    EXPECT_FALSE(c->expect_reject) << e.name;
    EXPECT_EQ(c->expected_r0, e.r0) << e.name;
  }
  // Rejected BPF_END widths stay rejected, with the loader's message.
  for (const char* name :
       {"err_end_width0", "err_end_width8", "err_end_width24"}) {
    const ConformanceCase* c = find(name);
    ASSERT_NE(c, nullptr) << name << " missing from corpus";
    EXPECT_TRUE(c->expect_reject) << name;
    EXPECT_EQ(c->expected_error, "invalid ALU opcode") << name;
  }
}

// ---- Satellite 4: negative parses — clean errors, never crashes ----

TEST(AsmNegativeTest, MalformedMnemonics) {
  const char* kBad[] = {
      "r0 <>= 5",                    // unknown ALU op
      "r12 = 1",                     // register out of range
      "frob r0, r1",                 // unknown mnemonic
      "r0 = be r0",                  // endian width missing
      "if r0 !> 3 goto +1",          // unknown jump op
      "r0 = *(u24 *)(r10 -8)",       // unknown access size
      "*(s16 *)(r10 -8) = r0",       // sign-extending store doesn't exist
      "r0 = *(u8 *)(r10 -8) junk",   // trailing junk
      "wr0 += r1",                   // 32-bit width mismatch
      "r0 = -r1",                    // neg operand must equal dst
      "goto",                        // missing offset
      "call pc",                     // missing offset
      "  (ld_imm64 hi: 0x1)",        // continuation without a lo slot
      "",                            // empty line (AssembleLine is strict)
  };
  for (const char* line : kBad) {
    std::vector<bpf::Insn> insns;
    AsmError error;
    EXPECT_FALSE(AssembleLine(line, &insns, &error)) << line;
    EXPECT_FALSE(error.message.empty()) << line;
  }
}

TEST(AsmNegativeTest, OutOfRangeImmediatesAndOffsets) {
  const char* kBad[] = {
      "r0 += 0x100000000",             // imm32 overflow (hex)
      "r0 += 4294967296",              // imm32 overflow (decimal)
      "r0 = -2147483649",              // below INT32_MIN for alu imm
      "r0 = *(u64 *)(r10 -40000)",     // offset below s16
      "if r0 == 1 goto +40000",        // branch offset above s16
      "r0 = 0x123456789abcdef01 ll",   // u64 overflow
  };
  for (const char* line : kBad) {
    std::vector<bpf::Insn> insns;
    AsmError error;
    EXPECT_FALSE(AssembleLine(line, &insns, &error)) << line;
    EXPECT_FALSE(error.message.empty()) << line;
  }
}

TEST(AsmNegativeTest, ProgramLevelErrorsCarryLineNumbers) {
  std::vector<bpf::Insn> insns;
  AsmError error;
  EXPECT_FALSE(AssembleProgram("r0 = 1\nbogus line\nexit\n", &insns, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_FALSE(AssembleProgram("", &insns, &error));
  EXPECT_FALSE(AssembleProgram("# only comments\n\n", &insns, &error));
}

TEST(CorpusNegativeTest, MalformedCaseFiles) {
  struct Bad {
    const char* text;
    const char* why;
  };
  const Bad kBad[] = {
      {"r0 = 1\n-- asm\nexit\n-- result\n1\n", "content before first header"},
      {"-- asm\nexit\n", "missing result/error section"},
      {"-- asm\nexit\n-- result\n1\n-- error\nx\n", "result and error"},
      {"-- asm\nexit\n-- wibble\n1\n", "unknown section"},
      {"-- asm\nr0 = 1\nexit\n-- result\n\n", "empty result"},
      {"-- asm\nr0 = 1\nexit\n-- result\nbanana\n", "malformed result"},
      {"-- asm\nr0 = 1\nexit\n-- result\n1 2\n", "trailing junk in result"},
      {"-- asm\nr0 = 1\nexit\n-- mem\n8\n-- result\n1\n", "odd nibble count"},
      {"-- asm\nr0 = 1\nexit\n-- mem\nzz\n-- result\n1\n", "bad hex char"},
      {"-- asm\nnot asm\nexit\n-- result\n1\n", "assembler error"},
      {"-- result\n1\n", "no asm section"},
  };
  for (const Bad& bad : kBad) {
    ConformanceCase c;
    std::string error;
    EXPECT_FALSE(ParseCaseText(bad.text, "t", &c, &error)) << bad.why;
    EXPECT_FALSE(error.empty()) << bad.why;
  }
}

TEST(CorpusNegativeTest, MissingDirAndMissingFileFailCleanly) {
  std::vector<ConformanceCase> corpus;
  std::string error;
  EXPECT_FALSE(LoadCorpusDir("/nonexistent/conformance/dir", &corpus, &error));
  EXPECT_FALSE(error.empty());
  ConformanceCase c;
  error.clear();
  EXPECT_FALSE(LoadCaseFile("/nonexistent/case.data", &c, &error));
  EXPECT_FALSE(error.empty());
}

// ---- Prologue determinism: same corpus, same findings, same counters ----

TEST(ConformancePrologueTest, DeterministicAndSeedsCorpus) {
  CampaignOptions options;
  options.conformance_dir = BVF_CONFORMANCE_DIR;
  options.confirm_runs = 0;

  CampaignStats a;
  CampaignStats b;
  std::vector<FuzzCase> corpus_a;
  std::vector<FuzzCase> corpus_b;
  ASSERT_TRUE(RunConformancePrologue(options, a, &corpus_a)) << a.resume_error;
  ASSERT_TRUE(RunConformancePrologue(options, b, &corpus_b)) << b.resume_error;

  EXPECT_GE(a.conf_cases, 60u);
  EXPECT_EQ(a.conf_cases, b.conf_cases);
  EXPECT_EQ(a.conf_passed, b.conf_passed);
  EXPECT_EQ(a.conf_mismatches, 0u);
  EXPECT_EQ(a.conf_rejects, 0u);
  EXPECT_EQ(a.conf_seeded, b.conf_seeded);
  EXPECT_EQ(a.findings.size(), 0u);
  EXPECT_GT(corpus_a.size(), 0u);
  EXPECT_EQ(corpus_a.size(), corpus_b.size());
}

}  // namespace
}  // namespace conf
}  // namespace bvf
