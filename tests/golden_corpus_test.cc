// Golden-corpus regression suite: byte-exact disassembly snapshots of the
// structured generator's output for 32 fixed seeds (tests/data/golden/).
//
// The generator's byte stream is campaign semantics: fingerprints, digests,
// verdict-cache keys, and the metamorphic oracle's variant derivation all key
// off the exact instruction bytes. Any change to generation — even a
// refactor that "only" reorders RNG draws — shifts every downstream result,
// so it must show up here as an explicit, reviewed snapshot diff.
//
// To regenerate after an intentional generator change:
//   scripts/regen_golden.sh   (or run this binary with BVF_GOLDEN_REGEN=1)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/structured_gen.h"
#include "src/kernel/rng.h"

namespace bvf {
namespace {

constexpr uint64_t kNumSeeds = 32;

std::string Snapshot(uint64_t seed) {
  StructuredGenerator generator(bpf::KernelVersion::kBpfNext);
  bpf::Rng rng(seed);
  const FuzzCase fc = generator.Generate(rng);
  char header[160];
  snprintf(header, sizeof(header),
           "# golden seed=%llu type=%d insns=%zu maps=%zu test_runs=%d "
           "attach=%d xdp=%d batch=%d\n",
           static_cast<unsigned long long>(seed), static_cast<int>(fc.prog.type),
           fc.prog.insns.size(), fc.maps.size(), fc.test_runs,
           fc.do_attach ? 1 : 0, fc.do_xdp_install ? 1 : 0,
           fc.do_map_batch ? 1 : 0);
  return std::string(header) + fc.prog.Disassemble();
}

std::string GoldenPath(uint64_t seed) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/seed_%02llu.txt",
           static_cast<unsigned long long>(seed));
  return std::string(BVF_GOLDEN_DIR) + buf;
}

TEST(GoldenCorpusTest, GenerationIsDeterministic) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(Snapshot(seed), Snapshot(seed)) << "seed " << seed;
  }
}

TEST(GoldenCorpusTest, SnapshotsAreByteStable) {
  const bool regen = std::getenv("BVF_GOLDEN_REGEN") != nullptr;
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const std::string snapshot = Snapshot(seed);
    const std::string path = GoldenPath(seed);
    if (regen) {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(os) << "cannot write " << path;
      os << snapshot;
      continue;
    }
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is) << "missing golden file " << path
                    << " (run scripts/regen_golden.sh)";
    std::stringstream want;
    want << is.rdbuf();
    EXPECT_EQ(want.str(), snapshot)
        << "generator output drifted from golden snapshot for seed " << seed
        << "; if intentional, regenerate via scripts/regen_golden.sh and "
           "review the diff";
  }
}

}  // namespace
}  // namespace bvf
