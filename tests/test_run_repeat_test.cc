// BPF_PROG_TEST_RUN repeat semantics (the overhead benchmark's measurement
// primitive): context reuse, cumulative instruction accounting, and abort
// propagation.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"

namespace bpf {
namespace {

class TestRunRepeatTest : public ::testing::Test {
 protected:
  TestRunRepeatTest() : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  Kernel kernel_;
  Bpf bpf_;
};

TEST_F(TestRunRepeatTest, AccumulatesInstructionCounts) {
  ProgramBuilder b;
  b.Mov(kR0, 1);
  b.Add(kR0, 2);
  b.Ret();  // 3 insns per run
  const int fd = bpf_.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  const ExecResult result = bpf_.ProgTestRunRepeat(fd, 10);
  EXPECT_EQ(result.err, 0);
  EXPECT_EQ(result.r0, 3u);
  EXPECT_EQ(result.insns_executed, 30u);
}

TEST_F(TestRunRepeatTest, ContextIsSharedAcrossRuns) {
  // The packet is written on each run; with a shared context the byte the
  // first run stored is visible to the next.
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 0);
  b.Load(kSizeDw, kR3, kR1, 8);
  b.Mov(kR4, kR2);
  b.Add(kR4, 1);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 3);
  b.Load(kSizeB, kR0, kR2, 0);   // read current byte
  b.Mov(kR5, 0x7f);
  b.Store(kSizeB, kR2, kR5, 0);  // overwrite for the next run
  b.Ret();
  const int fd = bpf_.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  const ExecResult result = bpf_.ProgTestRunRepeat(fd, 3, 64, 9);
  EXPECT_EQ(result.err, 0);
  EXPECT_EQ(result.r0, 0x7fu);  // the last run observed the previous write
}

TEST_F(TestRunRepeatTest, BadFdAndLeakFreedom) {
  EXPECT_EQ(bpf_.ProgTestRunRepeat(77, 5).err, -EBADF);
  ProgramBuilder b;
  b.RetImm(0);
  const int fd = bpf_.ProgLoad(b.Build());
  const size_t before = kernel_.arena().live_allocations();
  bpf_.ProgTestRunRepeat(fd, 50);
  EXPECT_EQ(kernel_.arena().live_allocations(), before);
}

TEST_F(TestRunRepeatTest, MatchesSingleRunSemantics) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR0, kR1, 0);
  b.Ret();
  const int fd = bpf_.ProgLoad(b.Build());
  const uint64_t single = bpf_.ProgTestRun(fd, 64, 5).r0;
  const uint64_t repeated = bpf_.ProgTestRunRepeat(fd, 4, 64, 5).r0;
  EXPECT_EQ(single, repeated);
}

}  // namespace
}  // namespace bpf
