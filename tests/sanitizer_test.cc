// BVF sanitation pass: rewrite shape (Fig. 5), branch re-linking across
// insertions, the instruction-count reductions, alu_limit check emission,
// and the key property — instrumentation preserves program semantics.

#include <gtest/gtest.h>

#include "src/core/generator.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"
#include "src/verifier/helper_protos.h"

namespace bpf {
namespace {

class SanitizerTest : public ::testing::Test {
 protected:
  // Loads the program twice: plain and sanitized. Returns the two fds.
  std::pair<int, int> LoadBoth(const Program& prog, std::vector<MapDef> maps = {}) {
    plain_ = std::make_unique<Kernel>(KernelVersion::kBpfNext, BugConfig::None());
    plain_bpf_ = std::make_unique<Bpf>(*plain_);
    san_ = std::make_unique<Kernel>(KernelVersion::kBpfNext, BugConfig::None());
    san_bpf_ = std::make_unique<Bpf>(*san_);
    BpfAsan::Register(*san_);
    san_bpf_->set_instrument(sanitizer_.Hook());
    for (const MapDef& def : maps) {
      plain_bpf_->MapCreate(def);
      san_bpf_->MapCreate(def);
    }
    return {plain_bpf_->ProgLoad(prog), san_bpf_->ProgLoad(prog)};
  }

  bvf::Sanitizer sanitizer_;
  std::unique_ptr<Kernel> plain_;
  std::unique_ptr<Kernel> san_;
  std::unique_ptr<Bpf> plain_bpf_;
  std::unique_ptr<Bpf> san_bpf_;
};

TEST_F(SanitizerTest, R10AccessesAreSkipped) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 1);
  b.Load(kSizeDw, kR0, kR10, -8);
  b.Ret();
  auto [plain_fd, san_fd] = LoadBoth(b.Build());
  ASSERT_GT(san_fd, 0);
  // No inflation: both accesses go through R10 with constant offsets.
  EXPECT_EQ(san_bpf_->FindProg(san_fd)->prog.insns.size(),
            plain_bpf_->FindProg(plain_fd)->prog.insns.size());
  EXPECT_EQ(sanitizer_.stats().skipped_fp, 2u);
  EXPECT_EQ(sanitizer_.stats().mem_sites, 0u);
}

TEST_F(SanitizerTest, CopiedStackPointerIsInstrumented) {
  ProgramBuilder b;
  b.Mov(kR6, kR10);
  b.Add(kR6, -8);
  b.StoreImm(kSizeDw, kR6, 0, 1);
  b.Load(kSizeDw, kR0, kR6, 0);
  b.Ret();
  auto [plain_fd, san_fd] = LoadBoth(b.Build());
  ASSERT_GT(san_fd, 0);
  EXPECT_EQ(sanitizer_.stats().mem_sites, 2u);
  const LoadedProgram* prog = san_bpf_->FindProg(san_fd);
  EXPECT_GT(prog->prog.insns.size(), b.Build().size());
  // The dispatch calls reference the internal asan ids.
  bool saw_store_call = false;
  bool saw_load_call = false;
  for (const Insn& insn : prog->prog.insns) {
    saw_store_call |= insn.IsHelperCall() && insn.imm == kAsanStore64;
    saw_load_call |= insn.IsHelperCall() && insn.imm == kAsanLoad64;
  }
  EXPECT_TRUE(saw_store_call);
  EXPECT_TRUE(saw_load_call);
  // Inserted instructions are marked `rewritten`; originals are not.
  size_t rewritten = 0;
  for (const InsnAux& aux : prog->aux) {
    rewritten += aux.rewritten;
  }
  EXPECT_EQ(prog->prog.insns.size() - rewritten, b.Build().size());
}

TEST_F(SanitizerTest, SemanticsPreservedOnCleanProgram) {
  // A program mixing stack traffic, map access, arithmetic, and branches
  // must compute the same R0 with and without instrumentation.
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 32;
  def.max_entries = 2;

  ProgramBuilder b;
  b.Mov(kR6, kR10);
  b.Add(kR6, -16);
  b.StoreImm(kSizeDw, kR6, 0, 11);
  b.StoreImm(kSizeDw, kR6, 8, 31);
  b.Load(kSizeDw, kR7, kR6, 0);
  b.Load(kSizeDw, kR8, kR6, 8);
  b.StoreImm(kSizeW, kR10, -20, 0);
  b.LdMapFd(kR1, 1);
  b.Mov(kR2, kR10);
  b.Add(kR2, -20);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 3);
  b.Store(kSizeDw, kR0, kR7, 0);
  b.Load(kSizeDw, kR9, kR0, 0);
  b.Alu(kAluAdd, kR8, kR9);
  b.Mov(kR0, kR8);
  b.Ret();

  auto [plain_fd, san_fd] = LoadBoth(b.Build(), {def});
  ASSERT_GT(plain_fd, 0);
  ASSERT_GT(san_fd, 0);
  const ExecResult plain_result = plain_bpf_->ProgTestRun(plain_fd, 64, 3);
  const ExecResult san_result = san_bpf_->ProgTestRun(san_fd, 64, 3);
  EXPECT_EQ(plain_result.r0, san_result.r0);
  EXPECT_EQ(plain_result.r0, 11u + 31u + 11u - 11u);  // 11+31 via r8+r9... = 42
  EXPECT_TRUE(san_->reports().empty());
  EXPECT_GT(san_result.insns_executed, plain_result.insns_executed);
}

TEST_F(SanitizerTest, SemanticPreservationSweep) {
  // Property: for structurally generated accepted programs, instrumentation
  // never changes the computed R0 and never reports on a bug-free kernel.
  bvf::StructuredGenOptions options;
  options.risky = false;
  bvf::StructuredGenerator generator(KernelVersion::kBpfNext, options);
  Rng rng(0xbadcafe);
  int compared = 0;
  for (int trial = 0; trial < 300 && compared < 120; ++trial) {
    const bvf::FuzzCase the_case = generator.Generate(rng);
    auto [plain_fd, san_fd] = LoadBoth(the_case.prog, the_case.maps);
    ASSERT_EQ(plain_fd > 0, san_fd > 0) << "instrumentation changed acceptance";
    if (plain_fd <= 0) {
      continue;
    }
    ++compared;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const ExecResult plain_result = plain_bpf_->ProgTestRun(plain_fd, 64, seed);
      const ExecResult san_result = san_bpf_->ProgTestRun(san_fd, 64, seed);
      ASSERT_EQ(plain_result.r0, san_result.r0) << the_case.prog.Disassemble();
      ASSERT_EQ(plain_result.err, san_result.err);
    }
    ASSERT_TRUE(san_->reports().empty()) << san_->reports().reports()[0].Signature();
  }
  EXPECT_GE(compared, 100);
}

TEST_F(SanitizerTest, BranchesRelinkedAcrossInsertions) {
  // A branch over an instrumented store must still skip exactly that store.
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 16;
  def.max_entries = 1;
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, 1);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);       // skips the two value accesses
  b.StoreImm(kSizeDw, kR0, 0, 5);    // instrumented (+many insns)
  b.Load(kSizeDw, kR0, kR0, 8);      // instrumented
  b.RetImm(0);
  auto [plain_fd, san_fd] = LoadBoth(b.Build(), {def});
  ASSERT_GT(plain_fd, 0);
  ASSERT_GT(san_fd, 0);
  EXPECT_EQ(plain_bpf_->ProgTestRun(plain_fd).r0, san_bpf_->ProgTestRun(san_fd).r0);
  EXPECT_TRUE(san_->reports().empty());
}

TEST_F(SanitizerTest, BackEdgeLoopsSurviveInstrumentation) {
  ProgramBuilder b;
  b.Mov(kR6, kR10);
  b.Add(kR6, -8);
  b.StoreImm(kSizeDw, kR6, 0, 0);
  b.Mov(kR7, 4);                       // counter
  b.Mov(kR1, 1);
  b.Raw(AtomicOp(kSizeDw, kR6, kR1, 0, kAtomicAdd));  // instrumented body
  b.Alu(kAluSub, kR7, 1);
  b.JmpIf(kJmpJne, kR7, 0, -4);
  b.Load(kSizeDw, kR0, kR6, 0);
  b.Ret();
  auto [plain_fd, san_fd] = LoadBoth(b.Build());
  ASSERT_GT(plain_fd, 0);
  ASSERT_GT(san_fd, 0);
  EXPECT_EQ(plain_bpf_->ProgTestRun(plain_fd).r0, 4u);
  EXPECT_EQ(san_bpf_->ProgTestRun(san_fd).r0, 4u);
}

TEST_F(SanitizerTest, AluCheckEmittedForVariableOffsets) {
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 64;
  def.max_entries = 1;
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 31);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, 1);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));  // ptr += bounded scalar
  b.Load(kSizeDw, kR0, kR0, 0);
  b.RetImm(0);
  auto [plain_fd, san_fd] = LoadBoth(b.Build(), {def});
  ASSERT_GT(san_fd, 0);
  EXPECT_GE(sanitizer_.stats().alu_sites, 1u);
  bool saw_alu_check = false;
  for (const Insn& insn : san_bpf_->FindProg(san_fd)->prog.insns) {
    saw_alu_check |= insn.IsHelperCall() &&
                     (insn.imm == kAsanAluCheckPos || insn.imm == kAsanAluCheckNeg);
  }
  EXPECT_TRUE(saw_alu_check);
  // Clean execution: the bounded offset is within the believed range.
  EXPECT_EQ(san_bpf_->ProgTestRun(san_fd).err, 0);
  EXPECT_TRUE(san_->reports().empty());
}

TEST_F(SanitizerTest, BtfLoadsUseNullTolerantVariant) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Load(kSizeDw, kR1, kR0, 40);  // task->mm (NULL at runtime)
  b.Load(kSizeDw, kR0, kR1, 0);   // BTF load of NULL: exception-handled
  b.Ret();
  auto [plain_fd, san_fd] = LoadBoth(b.Build());
  ASSERT_GT(san_fd, 0);
  bool saw_btf_variant = false;
  for (const Insn& insn : san_bpf_->FindProg(san_fd)->prog.insns) {
    saw_btf_variant |= insn.IsHelperCall() && insn.imm == kAsanLoadBtf64;
  }
  EXPECT_TRUE(saw_btf_variant);
  EXPECT_EQ(san_bpf_->ProgTestRun(san_fd).err, 0);
  EXPECT_TRUE(san_->reports().empty()) << san_->reports().reports()[0].Signature();
}

TEST_F(SanitizerTest, OptionsDisableParts) {
  bvf::SanitizerOptions options;
  options.sanitize_mem = false;
  options.sanitize_alu = false;
  bvf::Sanitizer off(options);
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  bpf.set_instrument(off.Hook());
  ProgramBuilder b;
  b.Mov(kR6, kR10);
  b.Add(kR6, -8);
  b.StoreImm(kSizeDw, kR6, 0, 1);
  b.RetImm(0);
  const int fd = bpf.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  EXPECT_EQ(bpf.FindProg(fd)->prog.insns.size(), b.Build().size());
}

TEST(InsertInsnPatchedTest, ForwardJumpSpansInsertion) {
  Program prog;
  prog.insns = {MovImm(kR0, 0), JmpImm(kJmpJeq, kR0, 0, 2), MovImm(kR1, 1), MovImm(kR2, 2),
                Exit()};
  // Insert between the jump and its target: the offset must grow.
  bvf::InsertInsnPatched(prog, 2, MovImm(kR3, 3));
  EXPECT_EQ(prog.insns[1].off, 3);
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
}

TEST(InsertInsnPatchedTest, JumpBeforeInsertionUnaffected) {
  Program prog;
  prog.insns = {JmpImm(kJmpJeq, kR0, 0, 1), MovImm(kR1, 1), MovImm(kR0, 0), Exit()};
  bvf::InsertInsnPatched(prog, 3, MovImm(kR3, 3));
  EXPECT_EQ(prog.insns[0].off, 1);
}

TEST(InsertInsnPatchedTest, BackEdgePatched) {
  Program prog;
  prog.insns = {MovImm(kR6, 3), AluImm(kAluSub, kR6, 1), JmpImm(kJmpJne, kR6, 0, -2),
                MovImm(kR0, 0), Exit()};
  // Insert at the loop-header position: the header shifts down with its
  // instruction, so the new insn lands before the loop and the back edge
  // still targets the (shifted) header.
  bvf::InsertInsnPatched(prog, 1, MovImm(kR7, 7));
  EXPECT_EQ(prog.insns[3].off, -2);
  EXPECT_EQ(prog.insns[1], MovImm(kR7, 7));
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
  // Inserting strictly inside the body (after the header) does extend the
  // back edge.
  bvf::InsertInsnPatched(prog, 3, MovImm(kR8, 8));
  EXPECT_EQ(prog.insns[4].off, -3);
}

}  // namespace
}  // namespace bpf
