// Property sweeps over the verifier's abstract domain — the Agni-style
// validation that motivated the paper's related work discussion:
//
//  * ALU transfer soundness: for any abstract register state containing a
//    concrete value, the transfer function's output contains the concrete
//    result, for every ALU op, 32- and 64-bit.
//  * Branch-outcome soundness: a branch declared always/never taken agrees
//    with concrete evaluation.
//  * Refinement soundness: refining a state under a branch condition keeps
//    every member that satisfies the condition.

#include <gtest/gtest.h>

#include "src/ebpf/insn.h"
#include "src/kernel/rng.h"
#include "src/verifier/verifier.h"

namespace bpf {
namespace {

// True when the abstract state admits the concrete value.
bool StateContains(const RegState& reg, uint64_t v) {
  if (reg.type != RegType::kScalar) {
    return false;
  }
  const int64_t sv = static_cast<int64_t>(v);
  const uint32_t v32 = static_cast<uint32_t>(v);
  const int32_t sv32 = static_cast<int32_t>(v);
  return reg.var_off.Contains(v) && reg.umin <= v && v <= reg.umax && reg.smin <= sv &&
         sv <= reg.smax && reg.u32_min <= v32 && v32 <= reg.u32_max && reg.s32_min <= sv32 &&
         sv32 <= reg.s32_max;
}

// Builds a random abstract scalar guaranteed to contain |member|.
RegState DrawState(Rng& rng, uint64_t member) {
  RegState reg = RegState::Unknown();
  switch (rng.Below(4)) {
    case 0:  // constant
      reg.MarkKnown(member);
      break;
    case 1: {  // unsigned interval around the member
      const uint64_t below = rng.Next() & 0xffff;
      const uint64_t above = rng.Next() & 0xffff;
      reg.umin = member >= below ? member - below : 0;
      reg.umax = member + above >= member ? member + above : kU64Max;
      reg.Sync();
      break;
    }
    case 2: {  // tnum knowledge: fix a random subset of bits
      const uint64_t known = rng.Next();
      reg.var_off = Tnum{member & known, ~known};
      reg.Sync();
      break;
    }
    case 3:  // fully unknown
      break;
  }
  EXPECT_TRUE(StateContains(reg, member));
  return reg;
}

uint64_t ConcreteAlu(uint8_t op, bool is64, uint64_t dst, uint64_t src) {
  if (!is64) {
    const uint32_t d = static_cast<uint32_t>(dst);
    const uint32_t s = static_cast<uint32_t>(src);
    switch (op) {
      case kAluAdd:
        return d + s;
      case kAluSub:
        return d - s;
      case kAluMul:
        return d * s;
      case kAluAnd:
        return d & s;
      case kAluOr:
        return d | s;
      case kAluXor:
        return d ^ s;
      case kAluLsh:
        return d << (s & 31);
      case kAluRsh:
        return d >> (s & 31);
      case kAluArsh:
        return static_cast<uint32_t>(static_cast<int32_t>(d) >> (s & 31));
      case kAluDiv:
        return s == 0 ? 0 : d / s;
      case kAluMod:
        return s == 0 ? d : d % s;
      default:
        return 0;
    }
  }
  switch (op) {
    case kAluAdd:
      return dst + src;
    case kAluSub:
      return dst - src;
    case kAluMul:
      return dst * src;
    case kAluAnd:
      return dst & src;
    case kAluOr:
      return dst | src;
    case kAluXor:
      return dst ^ src;
    case kAluLsh:
      return dst << (src & 63);
    case kAluRsh:
      return dst >> (src & 63);
    case kAluArsh:
      return static_cast<uint64_t>(static_cast<int64_t>(dst) >> (src & 63));
    case kAluDiv:
      return src == 0 ? 0 : dst / src;
    case kAluMod:
      return src == 0 ? dst : dst % src;
    default:
      return 0;
  }
}

struct AluCase {
  uint8_t op;
  bool is64;
};

class AluTransferSoundness : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTransferSoundness, OutputContainsConcreteResult) {
  const auto [op, is64] = GetParam();
  Rng rng(0x5a5a + op + (is64 ? 1 : 0));
  const bool is_shift = op == kAluLsh || op == kAluRsh || op == kAluArsh;
  for (int trial = 0; trial < 4000; ++trial) {
    const uint64_t x = rng.OneIn(4) ? rng.Below(1024) : rng.Next();
    uint64_t y = rng.OneIn(4) ? rng.Below(1024) : rng.Next();
    if (is_shift) {
      y &= is64 ? 63 : 31;
    }
    RegState dst = DrawState(rng, x);

    // Register-operand form.
    {
      RegState d = dst;
      const Insn insn = is64 ? AluReg(op, kR1, kR2) : Alu32Reg(op, kR1, kR2);
      ScalarAluTransfer(insn, d, DrawState(rng, y));
      const uint64_t result = ConcreteAlu(op, is64, x, y);
      ASSERT_TRUE(StateContains(d, result))
          << "reg form op=0x" << std::hex << int(op) << " is64=" << is64 << " x=" << x
          << " y=" << y << " result=" << result << " state=" << d.ToString();
      ASSERT_TRUE(d.BoundsSane());
    }
    // Immediate form (imm is s32; constrain the operand accordingly).
    {
      const int32_t imm = static_cast<int32_t>(y);
      if ((op == kAluDiv || op == kAluMod) && imm == 0) {
        continue;  // rejected at encoding time
      }
      if (is_shift && (imm < 0 || imm >= (is64 ? 64 : 32))) {
        continue;
      }
      RegState d = dst;
      const Insn insn = is64 ? AluImm(op, kR1, imm) : Alu32Imm(op, kR1, imm);
      RegState src = RegState::Known(
          is64 ? static_cast<uint64_t>(static_cast<int64_t>(imm)) : static_cast<uint32_t>(imm));
      ScalarAluTransfer(insn, d, src);
      const uint64_t operand =
          is64 ? static_cast<uint64_t>(static_cast<int64_t>(imm)) : static_cast<uint32_t>(imm);
      const uint64_t result = ConcreteAlu(op, is64, x, operand);
      ASSERT_TRUE(StateContains(d, result))
          << "imm form op=0x" << std::hex << int(op) << " is64=" << is64 << " x=" << x
          << " imm=" << imm << " result=" << result << " state=" << d.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluTransferSoundness,
    ::testing::Values(AluCase{kAluAdd, true}, AluCase{kAluAdd, false},
                      AluCase{kAluSub, true}, AluCase{kAluSub, false},
                      AluCase{kAluMul, true}, AluCase{kAluMul, false},
                      AluCase{kAluAnd, true}, AluCase{kAluAnd, false},
                      AluCase{kAluOr, true}, AluCase{kAluOr, false},
                      AluCase{kAluXor, true}, AluCase{kAluXor, false},
                      AluCase{kAluLsh, true}, AluCase{kAluLsh, false},
                      AluCase{kAluRsh, true}, AluCase{kAluRsh, false},
                      AluCase{kAluArsh, true}, AluCase{kAluArsh, false},
                      AluCase{kAluDiv, true}, AluCase{kAluDiv, false},
                      AluCase{kAluMod, true}, AluCase{kAluMod, false}));

bool ConcreteJmp(uint8_t op, uint64_t lhs, uint64_t rhs, bool is32) {
  if (is32) {
    lhs = static_cast<uint32_t>(lhs);
    rhs = static_cast<uint32_t>(rhs);
  }
  const int64_t slhs = is32 ? static_cast<int32_t>(lhs) : static_cast<int64_t>(lhs);
  const int64_t srhs = is32 ? static_cast<int32_t>(rhs) : static_cast<int64_t>(rhs);
  switch (op) {
    case kJmpJeq:
      return lhs == rhs;
    case kJmpJne:
      return lhs != rhs;
    case kJmpJgt:
      return lhs > rhs;
    case kJmpJge:
      return lhs >= rhs;
    case kJmpJlt:
      return lhs < rhs;
    case kJmpJle:
      return lhs <= rhs;
    case kJmpJsgt:
      return slhs > srhs;
    case kJmpJsge:
      return slhs >= srhs;
    case kJmpJslt:
      return slhs < srhs;
    case kJmpJsle:
      return slhs <= srhs;
    case kJmpJset:
      return (lhs & rhs) != 0;
    default:
      return false;
  }
}

struct JmpCase {
  uint8_t op;
  bool is32;
};

class JmpSoundness : public ::testing::TestWithParam<JmpCase> {};

TEST_P(JmpSoundness, OutcomeAgreesWithConcrete) {
  const auto [op, is32] = GetParam();
  Rng rng(0x777 + op + (is32 ? 1 : 0));
  for (int trial = 0; trial < 4000; ++trial) {
    const uint64_t member = rng.OneIn(3) ? rng.Below(256) : rng.Next();
    const uint64_t val = rng.OneIn(3) ? rng.Below(256) : rng.Next();
    const RegState reg = DrawState(rng, member);
    const int outcome = BranchOutcome(reg, val, op, is32);
    const bool concrete = ConcreteJmp(op, member, val, is32);
    if (outcome == 1) {
      ASSERT_TRUE(concrete) << "declared always-taken but member " << member
                            << " violates op=0x" << std::hex << int(op);
    } else if (outcome == 0) {
      ASSERT_FALSE(concrete) << "declared never-taken but member " << member
                             << " satisfies op=0x" << std::hex << int(op);
    }
  }
}

TEST_P(JmpSoundness, RefinementKeepsSatisfyingMembers) {
  const auto [op, is32] = GetParam();
  if (op == kJmpJset) {
    return;  // JSET refinement handled separately in the checker
  }
  Rng rng(0x999 + op + (is32 ? 1 : 0));
  for (int trial = 0; trial < 4000; ++trial) {
    const uint64_t member = rng.OneIn(3) ? rng.Below(256) : rng.Next();
    const uint64_t val = rng.OneIn(3) ? rng.Below(256) : rng.Next();
    if (!ConcreteJmp(op, member, val, is32)) {
      continue;  // the member must satisfy the branch condition
    }
    RegState reg = DrawState(rng, member);
    RefineScalarAgainstConst(reg, op, val, is32);
    ASSERT_TRUE(StateContains(reg, member))
        << "refinement dropped member " << member << " under op=0x" << std::hex << int(op)
        << " val=" << val << " -> " << reg.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, JmpSoundness,
    ::testing::Values(JmpCase{kJmpJeq, false}, JmpCase{kJmpJeq, true},
                      JmpCase{kJmpJne, false}, JmpCase{kJmpJne, true},
                      JmpCase{kJmpJgt, false}, JmpCase{kJmpJgt, true},
                      JmpCase{kJmpJge, false}, JmpCase{kJmpJge, true},
                      JmpCase{kJmpJlt, false}, JmpCase{kJmpJlt, true},
                      JmpCase{kJmpJle, false}, JmpCase{kJmpJle, true},
                      JmpCase{kJmpJsgt, false}, JmpCase{kJmpJsgt, true},
                      JmpCase{kJmpJsge, false}, JmpCase{kJmpJsge, true},
                      JmpCase{kJmpJslt, false}, JmpCase{kJmpJslt, true},
                      JmpCase{kJmpJsle, false}, JmpCase{kJmpJsle, true},
                      JmpCase{kJmpJset, false}, JmpCase{kJmpJset, true}));

// Bounds-machinery invariants.
TEST(RegStateProperty, SyncPreservesMembers) {
  Rng rng(0x31415);
  for (int trial = 0; trial < 8000; ++trial) {
    const uint64_t member = rng.Next();
    RegState reg = DrawState(rng, member);
    reg.Sync();
    ASSERT_TRUE(StateContains(reg, member));
    reg.ZExt32();
    ASSERT_TRUE(StateContains(reg, static_cast<uint32_t>(member)));
  }
}

TEST(RegStateProperty, SubsumptionIsReflexiveAndMemberMonotone) {
  Rng rng(0x27182);
  for (int trial = 0; trial < 4000; ++trial) {
    const uint64_t member = rng.Next();
    const RegState narrow = DrawState(rng, member);
    ASSERT_TRUE(RegSubsumes(narrow, narrow));
    // A fully unknown state subsumes anything scalar.
    ASSERT_TRUE(RegSubsumes(RegState::Unknown(), narrow));
    // NotInit old-state subsumes everything (old path never used the reg).
    ASSERT_TRUE(RegSubsumes(RegState::NotInit(), narrow));
  }
}

}  // namespace
}  // namespace bpf
