// Simulated-kernel substrate: KASAN arena + shadow memory, allocator
// (kmalloc/kvmalloc/kmemdup limits), lockdep, tracepoints, BTF, and reports.

#include <vector>

#include <gtest/gtest.h>

#include "src/kernel/alloc.h"
#include "src/kernel/btf.h"
#include "src/kernel/kasan.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/report.h"
#include "src/kernel/tracepoint.h"
#include "src/runtime/kernel.h"

namespace bpf {
namespace {

// ---- KASAN arena ----

class KasanTest : public ::testing::Test {
 protected:
  KasanArena arena_{64 * 1024};
  ReportSink sink_;
};

TEST_F(KasanTest, AllocGivesAddressableMemory) {
  const uint64_t addr = arena_.Alloc(32, "obj");
  ASSERT_NE(addr, 0u);
  EXPECT_EQ(arena_.Classify(addr, 32), AccessResult::kOk);
  EXPECT_EQ(arena_.Classify(addr + 31, 1), AccessResult::kOk);
}

TEST_F(KasanTest, RedzonesSurroundAllocations) {
  const uint64_t addr = arena_.Alloc(32, "obj");
  EXPECT_EQ(arena_.Classify(addr + 32, 1), AccessResult::kOob);
  EXPECT_EQ(arena_.Classify(addr - 1, 1), AccessResult::kOob);
  EXPECT_EQ(arena_.Classify(addr + 30, 4), AccessResult::kOob);  // straddles the end
}

TEST_F(KasanTest, FreedMemoryIsPoisoned) {
  const uint64_t addr = arena_.Alloc(16, "obj");
  arena_.Free(addr);
  EXPECT_EQ(arena_.Classify(addr, 8), AccessResult::kUseAfterFree);
}

TEST_F(KasanTest, NullPageAndWildClassified) {
  EXPECT_EQ(arena_.Classify(0, 8), AccessResult::kNull);
  EXPECT_EQ(arena_.Classify(8, 8), AccessResult::kNull);
  EXPECT_EQ(arena_.Classify(0x1234567890ull, 8), AccessResult::kWild);
  EXPECT_EQ(arena_.Classify(kArenaBase + (64 << 10), 8), AccessResult::kWild);
}

TEST_F(KasanTest, CheckedReadWritesRoundTrip) {
  const uint64_t addr = arena_.Alloc(8, "slot");
  EXPECT_TRUE(arena_.CheckedWrite(addr, 8, 0xabcdef, sink_, "test"));
  uint64_t value = 0;
  EXPECT_TRUE(arena_.CheckedRead(addr, 8, &value, sink_, "test"));
  EXPECT_EQ(value, 0xabcdefull);
  EXPECT_TRUE(sink_.empty());
}

TEST_F(KasanTest, CheckedOobFilesKasanReport) {
  const uint64_t addr = arena_.Alloc(8, "slot");
  uint64_t value = 0;
  arena_.CheckedRead(addr + 8, 8, &value, sink_, "kernel_routine");
  ASSERT_EQ(sink_.size(), 1u);
  EXPECT_EQ(sink_.reports()[0].kind, ReportKind::kKasanOob);
  EXPECT_EQ(sink_.reports()[0].title, "kernel_routine");
  EXPECT_NE(sink_.reports()[0].details.find("slot"), std::string::npos);
}

TEST_F(KasanTest, CheckedUafFilesReport) {
  const uint64_t addr = arena_.Alloc(8, "slot");
  arena_.Free(addr);
  arena_.CheckedWrite(addr, 8, 1, sink_, "routine");
  ASSERT_EQ(sink_.size(), 1u);
  EXPECT_EQ(sink_.reports()[0].kind, ReportKind::kKasanUseAfterFree);
}

TEST_F(KasanTest, RawAccessIsSilentInRedzone) {
  const uint64_t addr = arena_.Alloc(8, "slot");
  // Native (JITed) access: corrupts the redzone silently — the asymmetry
  // motivating the paper's dispatch sanitation.
  EXPECT_TRUE(arena_.RawWrite(addr + 8, 8, 0x41, sink_, "bpf_prog_run"));
  EXPECT_TRUE(sink_.empty());
}

TEST_F(KasanTest, RawAccessFaultsOutsideArena) {
  EXPECT_FALSE(arena_.RawRead(0x10, 8, nullptr, sink_, "bpf_prog_run"));
  ASSERT_EQ(sink_.size(), 1u);
  EXPECT_EQ(sink_.reports()[0].kind, ReportKind::kKasanNullDeref);
  sink_.Clear();
  EXPECT_FALSE(arena_.RawRead(0xdead00000000ull, 8, nullptr, sink_, "bpf_prog_run"));
  EXPECT_EQ(sink_.reports()[0].kind, ReportKind::kPageFault);
}

TEST_F(KasanTest, ExhaustionReturnsZero) {
  KasanArena tiny(1024);
  EXPECT_NE(tiny.Alloc(256, "a"), 0u);
  EXPECT_EQ(tiny.Alloc(4096, "b"), 0u);
}

TEST_F(KasanTest, AllocationMetadata) {
  const uint64_t addr = arena_.Alloc(24, "meta");
  EXPECT_EQ(arena_.AllocationStart(addr + 10), addr);
  EXPECT_EQ(arena_.AllocationSize(addr + 10), 24u);
  EXPECT_EQ(*arena_.AllocationTag(addr), "meta");
  EXPECT_EQ(arena_.AllocationStart(addr + 100), 0u);
}

TEST_F(KasanTest, DescribeNearestNamesTheObject) {
  const uint64_t addr = arena_.Alloc(16, "task_struct");
  const std::string desc = arena_.DescribeNearest(addr + 16, 8);
  EXPECT_NE(desc.find("task_struct"), std::string::npos);
  EXPECT_NE(desc.find("16"), std::string::npos);
}

TEST_F(KasanTest, CopyInOut) {
  const uint64_t addr = arena_.Alloc(16, "buf");
  const uint8_t src[16] = {1, 2, 3, 4};
  EXPECT_TRUE(arena_.CopyIn(addr, src, 16));
  uint8_t dst[16] = {};
  EXPECT_TRUE(arena_.CopyOut(addr, dst, 16));
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
  EXPECT_FALSE(arena_.CopyIn(0x500, src, 16));
}

TEST_F(KasanTest, BytesInUseTracksAllocations) {
  const size_t before = arena_.bytes_in_use();
  const uint64_t addr = arena_.Alloc(100, "x");
  EXPECT_EQ(arena_.bytes_in_use(), before + 100);
  arena_.Free(addr);
  EXPECT_EQ(arena_.bytes_in_use(), before);
}

// ---- Allocator ----

TEST(AllocTest, KmallocRespectsLimit) {
  KasanArena arena(256 * 1024);
  KernelAllocator alloc(arena);
  EXPECT_NE(alloc.Kmalloc(kKmallocMax, "big"), 0u);
  EXPECT_EQ(alloc.Kmalloc(kKmallocMax + 1, "too-big"), 0u);
  EXPECT_NE(alloc.Kvmalloc(kKmallocMax + 1, "vmalloc-ok"), 0u);
}

TEST(AllocTest, KmemdupVsKvmemdup) {
  KasanArena arena(256 * 1024);
  KernelAllocator alloc(arena);
  std::vector<uint8_t> data(kKmallocMax + 8, 0x5a);
  EXPECT_EQ(alloc.Kmemdup(data.data(), data.size(), "dup"), 0u);
  const uint64_t addr = alloc.Kvmemdup(data.data(), data.size(), "vdup");
  ASSERT_NE(addr, 0u);
  uint8_t byte = 0;
  arena.CopyOut(addr + 100, &byte, 1);
  EXPECT_EQ(byte, 0x5a);
  alloc.Kfree(addr);
  EXPECT_EQ(arena.Classify(addr, 1), AccessResult::kUseAfterFree);
}

// ---- Lockdep ----

class LockdepTest : public ::testing::Test {
 protected:
  ReportSink sink_;
  Lockdep lockdep_{sink_};
};

TEST_F(LockdepTest, RegisterClassIsIdempotent) {
  const int a = lockdep_.RegisterClass("lock_a");
  const int b = lockdep_.RegisterClass("lock_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(lockdep_.RegisterClass("lock_a"), a);
  EXPECT_EQ(lockdep_.ClassName(a), "lock_a");
}

TEST_F(LockdepTest, AcquireReleaseClean) {
  const int a = lockdep_.RegisterClass("lock_a");
  lockdep_.Acquire(a, LockContext::kNormal);
  EXPECT_TRUE(lockdep_.IsHeld(a));
  lockdep_.Release(a);
  EXPECT_FALSE(lockdep_.IsHeld(a));
  EXPECT_TRUE(sink_.empty());
}

TEST_F(LockdepTest, NestedDifferentClassesClean) {
  const int a = lockdep_.RegisterClass("a");
  const int b = lockdep_.RegisterClass("b");
  lockdep_.Acquire(a, LockContext::kNormal);
  lockdep_.Acquire(b, LockContext::kNormal);
  lockdep_.Release(b);
  lockdep_.Release(a);
  EXPECT_TRUE(sink_.empty());
}

TEST_F(LockdepTest, SameContextRecursionDetected) {
  const int a = lockdep_.RegisterClass("a");
  lockdep_.Acquire(a, LockContext::kNormal);
  lockdep_.Acquire(a, LockContext::kNormal);
  ASSERT_FALSE(sink_.empty());
  EXPECT_EQ(sink_.reports()[0].kind, ReportKind::kLockdepRecursion);
}

TEST_F(LockdepTest, CrossContextReacquireIsInconsistent) {
  const int a = lockdep_.RegisterClass("a");
  lockdep_.Acquire(a, LockContext::kNormal);
  lockdep_.Acquire(a, LockContext::kTracepoint);
  ASSERT_FALSE(sink_.empty());
  EXPECT_EQ(sink_.reports()[0].kind, ReportKind::kLockdepInconsistent);
}

TEST_F(LockdepTest, BothContextsWithoutOverlapIsFine) {
  const int a = lockdep_.RegisterClass("a");
  lockdep_.Acquire(a, LockContext::kNormal);
  lockdep_.Release(a);
  lockdep_.Acquire(a, LockContext::kTracepoint);
  lockdep_.Release(a);
  EXPECT_TRUE(sink_.empty());
}

TEST_F(LockdepTest, DepthOverflowReported) {
  const int a = lockdep_.RegisterClass("a");
  for (int i = 0; i < 64; ++i) {
    lockdep_.Acquire(a, LockContext::kNormal);
  }
  bool saw_deadlock = false;
  for (const KernelReport& report : sink_.reports()) {
    saw_deadlock |= report.kind == ReportKind::kLockdepDeadlock;
  }
  EXPECT_TRUE(saw_deadlock);
}

TEST_F(LockdepTest, ResetDropsHeldLocks) {
  const int a = lockdep_.RegisterClass("a");
  lockdep_.Acquire(a, LockContext::kNormal);
  lockdep_.Reset();
  EXPECT_FALSE(lockdep_.IsHeld(a));
  EXPECT_EQ(lockdep_.depth(), 0u);
}

// ---- Tracepoints ----

class TracepointTest : public ::testing::Test {
 protected:
  ReportSink sink_;
  TracepointRegistry registry_{sink_};
};

TEST_F(TracepointTest, FireRunsHandlers) {
  int count = 0;
  registry_.Attach(TracepointId::kSchedSwitch, [&] { ++count; });
  registry_.Attach(TracepointId::kSchedSwitch, [&] { ++count; });
  registry_.Fire(TracepointId::kSchedSwitch);
  EXPECT_EQ(count, 2);
  registry_.Fire(TracepointId::kSysEnter);  // no handlers: no-op
  EXPECT_EQ(count, 2);
}

TEST_F(TracepointTest, DetachStopsDelivery) {
  int count = 0;
  const int token = registry_.Attach(TracepointId::kSysEnter, [&] { ++count; });
  registry_.Fire(TracepointId::kSysEnter);
  registry_.Detach(TracepointId::kSysEnter, token);
  registry_.Fire(TracepointId::kSysEnter);
  EXPECT_EQ(count, 1);
}

TEST_F(TracepointTest, RecursionDepthGuard) {
  int depth = 0;
  int max_depth = 0;
  registry_.Attach(TracepointId::kContentionBegin, [&] {
    ++depth;
    max_depth = std::max(max_depth, depth);
    registry_.Fire(TracepointId::kContentionBegin);  // re-entrant firing
    --depth;
  });
  registry_.Fire(TracepointId::kContentionBegin);
  EXPECT_LE(max_depth, 16);
  bool saw_overflow = false;
  for (const KernelReport& report : sink_.reports()) {
    saw_overflow |= report.kind == ReportKind::kStackOverflow;
  }
  EXPECT_TRUE(saw_overflow);
}

TEST_F(TracepointTest, Names) {
  EXPECT_STREQ(TracepointName(TracepointId::kContentionBegin), "contention_begin");
  EXPECT_STREQ(TracepointName(TracepointId::kTracePrintk), "trace_printk");
}

// ---- BTF ----

TEST(BtfTest, BuiltinsPresent) {
  BtfRegistry btf;
  const BtfStruct* task = btf.Find(kBtfTaskStruct);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->name, "task_struct");
  EXPECT_EQ(btf.FindByName("mm_struct")->id, kBtfMmStruct);
  EXPECT_EQ(btf.Find(999), nullptr);
  EXPECT_EQ(btf.FindByName("nope"), nullptr);
}

TEST(BtfTest, FieldLookupRespectsBounds) {
  BtfRegistry btf;
  const BtfStruct* task = btf.Find(kBtfTaskStruct);
  const BtfField* pid = task->FieldAt(16, 4);
  ASSERT_NE(pid, nullptr);
  EXPECT_EQ(pid->name, "pid");
  // Partial reads within a field resolve to it; straddles do not.
  EXPECT_NE(task->FieldAt(24, 8), nullptr);   // inside comm[16]
  EXPECT_EQ(task->FieldAt(18, 4), nullptr);   // straddles pid/tgid
}

TEST(BtfTest, PointerFieldsChain) {
  BtfRegistry btf;
  const BtfStruct* task = btf.Find(kBtfTaskStruct);
  const BtfField* mm = task->FieldAt(40, 8);
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->points_to, kBtfMmStruct);
  const BtfField* parent = task->FieldAt(112, 8);
  EXPECT_EQ(parent->points_to, kBtfTaskStruct);
}

// ---- Reports ----

TEST(ReportTest, PanicSetsFlag) {
  ReportSink sink;
  EXPECT_FALSE(sink.panicked());
  sink.Panic("bad", "very bad");
  EXPECT_TRUE(sink.panicked());
  EXPECT_EQ(sink.reports()[0].kind, ReportKind::kPanic);
}

TEST(ReportTest, SignatureIsStable) {
  const KernelReport a{ReportKind::kKasanOob, "htab", "x"};
  const KernelReport b{ReportKind::kKasanOob, "htab", "y"};
  EXPECT_EQ(a.Signature(), b.Signature());
}

// ---- Dirty-tracked case reset ----

// The dirty-page restore must be byte-for-byte identical to the full-arena
// rewind. Paranoid mode runs that comparison inside ResetToBootSnapshot()
// and aborts on any divergence, so surviving the reset IS the assertion.
TEST(KasanResetTest, DirtyResetMatchesFullRewindByteForByte) {
  ReportSink sink;
  KasanArena arena(256 * 1024);
  const uint64_t boot_obj = arena.Alloc(64, "boot_obj");
  arena.CheckedWrite(boot_obj, 8, 0x1122334455667788ull, sink, "t");
  arena.TakeBootSnapshot();
  arena.set_paranoid_reset(true);
  ASSERT_TRUE(arena.dirty_reset());  // the default; this test gates it

  // A busy case: allocations (some freed into quarantine, some leaked),
  // checked and raw writes, and silent corruption of a boot object.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 32; ++i) {
    addrs.push_back(arena.Alloc(128 + 8 * i, "case_obj"));
    arena.CheckedWrite(addrs.back(), 8, 0xdeadbeef00ull + i, sink, "t");
  }
  for (size_t i = 0; i < addrs.size(); i += 2) {
    arena.Free(addrs[i]);
  }
  arena.RawWrite(boot_obj + 8, 8, 0x4141414141414141ull, sink, "t");
  EXPECT_GT(arena.dirty_page_count(), 0u);

  arena.ResetToBootSnapshot();  // paranoid cross-check runs in here

  EXPECT_EQ(arena.dirty_page_count(), 0u);
  EXPECT_EQ(arena.quarantine_size(), 0u);
  // The silently corrupted boot object is pristine again.
  uint64_t value = 0;
  ASSERT_TRUE(arena.CheckedRead(boot_obj, 8, &value, sink, "t"));
  EXPECT_EQ(value, 0x1122334455667788ull);
  // Post-boot allocations vanished: the bump allocator hands out the same
  // address a fresh post-boot arena would.
  const uint64_t first_after_reset = arena.Alloc(64, "case_obj");
  arena.ResetToBootSnapshot();
  EXPECT_EQ(arena.Alloc(64, "case_obj"), first_after_reset);
}

TEST(KasanResetTest, RepeatedResetsStayPristineUnderParanoia) {
  ReportSink sink;
  KasanArena arena(128 * 1024);
  arena.TakeBootSnapshot();
  arena.set_paranoid_reset(true);
  for (int round = 0; round < 4; ++round) {
    const uint64_t a = arena.Alloc(96, "obj");
    arena.CheckedWrite(a, 8, 0x5a5a5a5a5a5a5a5aull + round, sink, "t");
    const uint64_t b = arena.Alloc(4096 * 3, "big");  // spans multiple pages
    arena.CheckedWrite(b + 4096, 8, 7, sink, "t");
    arena.Free(a);
    arena.ResetToBootSnapshot();  // aborts if any byte diverges
    EXPECT_EQ(arena.dirty_page_count(), 0u) << "round " << round;
  }
}

// ---- Kernel case scalars ----

// Every per-case scalar lives in Kernel::CaseScalars and is restored by the
// struct-wide assignment in ResetCaseState(). A leaked task refcount — the
// bug class the struct extraction exists to prevent — must be visible via
// the accessor before the reset and gone after it.
TEST(KernelCaseScalarsTest, LeakedTaskRefsCaughtAndResetRestoresBootState) {
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Kernel fresh(KernelVersion::kBpfNext, BugConfig::None());

  // A case that leaks two task references and drains the entropy sources.
  kernel.TaskRefInc();
  kernel.TaskRefInc();
  kernel.TaskRefInc();
  kernel.TaskRefDec();
  for (int i = 0; i < 10; ++i) {
    kernel.NextKtime();
    kernel.NextPrandom();
  }
  EXPECT_EQ(kernel.task_refs(), 2);  // the leak is observable

  kernel.ResetCaseState();

  // Indistinguishable from a freshly booted kernel: refcount cleared and
  // both entropy streams rewound to their boot seeds.
  EXPECT_EQ(kernel.task_refs(), 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(kernel.NextKtime(), fresh.NextKtime()) << "draw " << i;
    EXPECT_EQ(kernel.NextPrandom(), fresh.NextPrandom()) << "draw " << i;
  }
}

TEST(KernelCaseScalarsTest, TaskRefUnderflowWarnsAndClamps) {
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  kernel.TaskRefDec();
  EXPECT_EQ(kernel.task_refs(), 0);  // clamped, not negative
  bool warned = false;
  for (const KernelReport& report : kernel.reports().reports()) {
    warned |= report.kind == ReportKind::kWarn;
  }
  EXPECT_TRUE(warned);
}

TEST(ReportTest, Indicator1Classification) {
  EXPECT_TRUE(IsIndicator1(ReportKind::kBpfAsanOob));
  EXPECT_TRUE(IsIndicator1(ReportKind::kAluLimitViolation));
  EXPECT_FALSE(IsIndicator1(ReportKind::kKasanOob));
  EXPECT_FALSE(IsIndicator1(ReportKind::kLockdepRecursion));
  EXPECT_FALSE(IsIndicator1(ReportKind::kPanic));
}

}  // namespace
}  // namespace bpf
