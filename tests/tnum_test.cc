// Tristate-number algebra: unit cases plus property sweeps. The central
// soundness property is containment: if x ∈ γ(a) and y ∈ γ(b), then
// (x op y) ∈ γ(a op b) for every tnum transfer function.

#include <gtest/gtest.h>

#include <vector>

#include "src/kernel/rng.h"
#include "src/verifier/reg_state.h"
#include "src/verifier/tnum.h"

namespace bpf {
namespace {

TEST(TnumTest, ConstIsConst) {
  const Tnum t = TnumConst(42);
  EXPECT_TRUE(t.IsConst());
  EXPECT_EQ(t.value, 42u);
  EXPECT_EQ(t.mask, 0u);
  EXPECT_TRUE(t.Contains(42));
  EXPECT_FALSE(t.Contains(43));
}

TEST(TnumTest, UnknownContainsEverything) {
  const Tnum t = TnumUnknown();
  EXPECT_TRUE(t.IsUnknown());
  EXPECT_TRUE(t.Contains(0));
  EXPECT_TRUE(t.Contains(kU64Max));
  EXPECT_TRUE(t.Contains(0xdeadbeef));
}

TEST(TnumTest, RangeContainsEndpoints) {
  const Tnum t = TnumRange(16, 31);
  for (uint64_t v = 16; v <= 31; ++v) {
    EXPECT_TRUE(t.Contains(v)) << v;
  }
  // A range tnum may over-approximate, but 16..31 is exactly one hex digit.
  EXPECT_FALSE(t.Contains(32));
  EXPECT_FALSE(t.Contains(15));
}

TEST(TnumTest, RangeDegenerate) {
  const Tnum t = TnumRange(7, 7);
  EXPECT_TRUE(t.IsConst());
  EXPECT_EQ(t.value, 7u);
}

TEST(TnumTest, RangeInverted) {
  EXPECT_TRUE(TnumRange(10, 3).IsUnknown());
}

TEST(TnumTest, AddConsts) {
  EXPECT_TRUE(TnumAdd(TnumConst(3), TnumConst(4)).EqualsConst(7));
}

TEST(TnumTest, SubConsts) {
  EXPECT_TRUE(TnumSub(TnumConst(10), TnumConst(4)).EqualsConst(6));
}

TEST(TnumTest, MulConsts) {
  EXPECT_TRUE(TnumMul(TnumConst(6), TnumConst(7)).EqualsConst(42));
}

TEST(TnumTest, AndMasksKnownZeros) {
  const Tnum t = TnumAnd(TnumUnknown(), TnumConst(0xff));
  // High bits are known zero after masking.
  EXPECT_EQ(t.value, 0u);
  EXPECT_EQ(t.mask, 0xffull);
  EXPECT_TRUE(t.Contains(0x42));
  EXPECT_FALSE(t.Contains(0x100));
}

TEST(TnumTest, OrSetsKnownOnes) {
  const Tnum t = TnumOr(TnumUnknown(), TnumConst(0x80));
  EXPECT_EQ(t.value & 0x80, 0x80u);
  EXPECT_FALSE(t.Contains(0));
}

TEST(TnumTest, ShiftsMoveKnowledge) {
  const Tnum t = TnumLshift(TnumConst(1), 4);
  EXPECT_TRUE(t.EqualsConst(16));
  const Tnum r = TnumRshift(TnumConst(0xf0), 4);
  EXPECT_TRUE(r.EqualsConst(0xf));
}

TEST(TnumTest, ArshiftSignExtends) {
  const Tnum t = TnumArshift(TnumConst(0x8000000000000000ull), 63, 64);
  EXPECT_TRUE(t.EqualsConst(kU64Max));
  const Tnum t32 = TnumArshift(TnumConst(0x80000000ull), 31, 32);
  EXPECT_TRUE(t32.EqualsConst(0xffffffffull));
}

TEST(TnumTest, CastTruncates) {
  const Tnum t = TnumCast(TnumConst(0x1234567890ull), 4);
  EXPECT_TRUE(t.EqualsConst(0x34567890ull));
}

TEST(TnumTest, IntersectTightens) {
  const Tnum a = TnumRange(0, 255);
  const Tnum b = TnumConst(77);
  const Tnum t = TnumIntersect(a, b);
  EXPECT_TRUE(t.EqualsConst(77));
}

TEST(TnumTest, UnionWidens) {
  const Tnum t = TnumUnion(TnumConst(4), TnumConst(6));
  EXPECT_TRUE(t.Contains(4));
  EXPECT_TRUE(t.Contains(6));
}

TEST(TnumTest, InReflexive) {
  const Tnum t = TnumRange(3, 9);
  EXPECT_TRUE(TnumIn(t, t));
  EXPECT_TRUE(TnumIn(TnumUnknown(), t));
  EXPECT_FALSE(TnumIn(TnumConst(3), t));
}

TEST(TnumTest, SubregSplicing) {
  const Tnum full = TnumConst(0x1111111122222222ull);
  const Tnum spliced = TnumWithSubreg(full, TnumConst(0x33333333ull));
  EXPECT_TRUE(spliced.EqualsConst(0x1111111133333333ull));
  EXPECT_TRUE(TnumSubreg(full).EqualsConst(0x22222222ull));
  EXPECT_TRUE(TnumClearSubreg(full).EqualsConst(0x1111111100000000ull));
  EXPECT_TRUE(TnumConstSubreg(full, 7).EqualsConst(0x1111111100000007ull));
}

// ---- Property sweep: containment under every binary op ----

enum class Op { kAdd, kSub, kAnd, kOr, kXor, kMul };

class TnumPropertyTest : public ::testing::TestWithParam<Op> {
 protected:
  // Draws a random tnum and a concrete member value.
  static std::pair<Tnum, uint64_t> Draw(Rng& rng) {
    const uint64_t value = rng.Next();
    const uint64_t mask = rng.Next() & rng.Next();  // biased toward fewer unknowns
    const Tnum t{value & ~mask, mask};
    const uint64_t member = (value & ~mask) | (rng.Next() & mask);
    return {t, member};
  }

  static Tnum Apply(Op op, Tnum a, Tnum b) {
    switch (op) {
      case Op::kAdd:
        return TnumAdd(a, b);
      case Op::kSub:
        return TnumSub(a, b);
      case Op::kAnd:
        return TnumAnd(a, b);
      case Op::kOr:
        return TnumOr(a, b);
      case Op::kXor:
        return TnumXor(a, b);
      case Op::kMul:
        return TnumMul(a, b);
    }
    return TnumUnknown();
  }

  static uint64_t Apply(Op op, uint64_t x, uint64_t y) {
    switch (op) {
      case Op::kAdd:
        return x + y;
      case Op::kSub:
        return x - y;
      case Op::kAnd:
        return x & y;
      case Op::kOr:
        return x | y;
      case Op::kXor:
        return x ^ y;
      case Op::kMul:
        return x * y;
    }
    return 0;
  }
};

TEST_P(TnumPropertyTest, Containment) {
  Rng rng(0xc0ffee + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 5000; ++trial) {
    auto [a, x] = Draw(rng);
    auto [b, y] = Draw(rng);
    const Tnum out = Apply(GetParam(), a, b);
    const uint64_t concrete = Apply(GetParam(), x, y);
    ASSERT_TRUE(out.Contains(concrete))
        << "op=" << static_cast<int>(GetParam()) << " a=" << a.ToString()
        << " b=" << b.ToString() << " x=" << x << " y=" << y;
    // Well-formedness: no bit both known-one and unknown.
    ASSERT_EQ(out.value & out.mask, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, TnumPropertyTest,
                         ::testing::Values(Op::kAdd, Op::kSub, Op::kAnd, Op::kOr, Op::kXor,
                                           Op::kMul));

TEST(TnumPropertyTest, ShiftContainment) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 5000; ++trial) {
    const uint64_t value = rng.Next();
    const uint64_t mask = rng.Next() & rng.Next();
    const Tnum t{value & ~mask, mask};
    const uint64_t member = (value & ~mask) | (rng.Next() & mask);
    const uint8_t shift = static_cast<uint8_t>(rng.Below(64));
    ASSERT_TRUE(TnumLshift(t, shift).Contains(member << shift));
    ASSERT_TRUE(TnumRshift(t, shift).Contains(member >> shift));
    ASSERT_TRUE(TnumArshift(t, shift, 64).Contains(
        static_cast<uint64_t>(static_cast<int64_t>(member) >> shift)));
  }
}

TEST(TnumPropertyTest, RangeContainmentSweep) {
  Rng rng(0xabc);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t lo = rng.Next() >> (rng.Below(40) + 8);
    uint64_t hi = lo + rng.Below(1 << 20);
    const Tnum t = TnumRange(lo, hi);
    // Sample points inside the range.
    for (int s = 0; s < 8; ++s) {
      const uint64_t v = lo + rng.Below(hi - lo + 1);
      ASSERT_TRUE(t.Contains(v)) << lo << ".." << hi << " v=" << v;
    }
  }
}

TEST(TnumPropertyTest, IntersectSoundOnCommonMembers) {
  Rng rng(0x123);
  for (int trial = 0; trial < 3000; ++trial) {
    const uint64_t member = rng.Next();
    // Build two tnums that both contain |member|.
    const uint64_t mask_a = rng.Next();
    const uint64_t mask_b = rng.Next();
    const Tnum a{member & ~mask_a, mask_a};
    const Tnum b{member & ~mask_b, mask_b};
    ASSERT_TRUE(TnumIntersect(a, b).Contains(member));
    ASSERT_TRUE(TnumUnion(a, b).Contains(member));
  }
}

}  // namespace
}  // namespace bpf
