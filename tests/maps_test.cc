// Map infrastructure: array / hash / percpu-array / ringbuf semantics, the
// registry, and the batched-lookup contention path.

#include <gtest/gtest.h>

#include <cstring>

#include "src/maps/map.h"

namespace bpf {
namespace {

class MapsTest : public ::testing::Test {
 protected:
  KasanArena arena_{512 * 1024};
  ReportSink sink_;
  MapRegistry registry_{arena_, sink_};

  int Create(MapType type, uint32_t key_size, uint32_t value_size, uint32_t entries,
             bool buggy = false) {
    MapDef def;
    def.type = type;
    def.key_size = key_size;
    def.value_size = value_size;
    def.max_entries = entries;
    return registry_.Create(def, buggy);
  }
};

TEST_F(MapsTest, CreateValidation) {
  EXPECT_GT(Create(MapType::kArray, 4, 8, 4), 0);
  EXPECT_EQ(Create(MapType::kArray, 8, 8, 4), -EINVAL);   // array key must be u32
  EXPECT_EQ(Create(MapType::kHash, 0, 8, 4), -EINVAL);    // zero key
  EXPECT_EQ(Create(MapType::kHash, 4, 0, 4), -EINVAL);    // zero value
  EXPECT_EQ(Create(MapType::kHash, 4, 8, 0), -EINVAL);    // zero entries
  EXPECT_EQ(Create(MapType::kHash, 128, 8, 4), -EINVAL);  // oversized key
  EXPECT_EQ(Create(MapType::kHash, 4, 8192, 4), -EINVAL); // oversized value
}

TEST_F(MapsTest, RegistryFind) {
  const int a = Create(MapType::kArray, 4, 8, 4);
  const int b = Create(MapType::kHash, 4, 8, 4);
  EXPECT_NE(registry_.Find(a), nullptr);
  EXPECT_NE(registry_.Find(b), nullptr);
  EXPECT_EQ(registry_.Find(99), nullptr);
  EXPECT_EQ(registry_.size(), 2u);
}

TEST_F(MapsTest, FindByObjAddr) {
  const int id = Create(MapType::kArray, 4, 8, 4);
  Map* map = registry_.Find(id);
  map->set_obj_addr(0xffff888000001000ull);
  EXPECT_EQ(registry_.FindByObjAddr(0xffff888000001000ull), map);
  EXPECT_EQ(registry_.FindByObjAddr(0), nullptr);
  EXPECT_EQ(registry_.FindByObjAddr(0x1234), nullptr);
}

TEST_F(MapsTest, ArrayLookupUpdate) {
  Map* map = registry_.Find(Create(MapType::kArray, 4, 8, 4));
  const uint32_t key = 2;
  const uint64_t value = 0x1122334455667788ull;
  EXPECT_EQ(map->Update(&key, &value), 0);
  const uint64_t addr = map->Lookup(&key);
  ASSERT_NE(addr, 0u);
  uint64_t readback = 0;
  arena_.CopyOut(addr, &readback, 8);
  EXPECT_EQ(readback, value);
}

TEST_F(MapsTest, ArrayIndexBounds) {
  Map* map = registry_.Find(Create(MapType::kArray, 4, 8, 4));
  const uint32_t bad_key = 4;
  EXPECT_EQ(map->Lookup(&bad_key), 0u);
  const uint64_t value = 1;
  EXPECT_EQ(map->Update(&bad_key, &value), -E2BIG);
  EXPECT_EQ(map->Delete(&bad_key), -EINVAL);  // arrays don't delete
}

TEST_F(MapsTest, ArrayValuesContiguous) {
  auto* map = static_cast<ArrayMap*>(registry_.Find(Create(MapType::kArray, 4, 16, 4)));
  const uint32_t k0 = 0;
  const uint32_t k1 = 1;
  EXPECT_EQ(map->Lookup(&k1) - map->Lookup(&k0), 16u);
  EXPECT_EQ(map->ValuesAddr(), map->Lookup(&k0));
}

TEST_F(MapsTest, ArrayGetNextKey) {
  Map* map = registry_.Find(Create(MapType::kArray, 4, 8, 3));
  uint32_t key = 0;
  EXPECT_EQ(map->GetNextKey(nullptr, &key), 0);
  EXPECT_EQ(key, 0u);
  uint32_t next = 0;
  EXPECT_EQ(map->GetNextKey(&key, &next), 0);
  EXPECT_EQ(next, 1u);
  key = 2;
  EXPECT_EQ(map->GetNextKey(&key, &next), -ENOENT);
}

TEST_F(MapsTest, HashInsertLookupDelete) {
  Map* map = registry_.Find(Create(MapType::kHash, 8, 16, 8));
  const uint64_t key = 0xfeedface;
  uint8_t value[16] = {9, 8, 7};
  EXPECT_EQ(map->Lookup(&key), 0u);
  EXPECT_EQ(map->Update(&key, value), 0);
  const uint64_t addr = map->Lookup(&key);
  ASSERT_NE(addr, 0u);
  uint8_t readback[16] = {};
  arena_.CopyOut(addr, readback, 16);
  EXPECT_EQ(readback[0], 9);
  EXPECT_EQ(map->Delete(&key), 0);
  EXPECT_EQ(map->Lookup(&key), 0u);
  EXPECT_EQ(map->Delete(&key), -ENOENT);
}

TEST_F(MapsTest, HashUpdateOverwrites) {
  Map* map = registry_.Find(Create(MapType::kHash, 4, 8, 8));
  const uint32_t key = 5;
  uint64_t value = 111;
  map->Update(&key, &value);
  value = 222;
  map->Update(&key, &value);
  uint64_t readback = 0;
  arena_.CopyOut(map->Lookup(&key), &readback, 8);
  EXPECT_EQ(readback, 222u);
}

TEST_F(MapsTest, HashCapacityEnforced) {
  Map* map = registry_.Find(Create(MapType::kHash, 4, 8, 2));
  uint64_t value = 1;
  for (uint32_t key = 0; key < 2; ++key) {
    EXPECT_EQ(map->Update(&key, &value), 0);
  }
  const uint32_t key = 2;
  EXPECT_EQ(map->Update(&key, &value), -E2BIG);
}

TEST_F(MapsTest, HashFreedElementsArePoisoned) {
  Map* map = registry_.Find(Create(MapType::kHash, 4, 8, 8));
  const uint32_t key = 1;
  uint64_t value = 42;
  map->Update(&key, &value);
  const uint64_t addr = map->Lookup(&key);
  map->Delete(&key);
  EXPECT_EQ(arena_.Classify(addr, 8), AccessResult::kUseAfterFree);
}

TEST_F(MapsTest, HashGetNextKeyWalksAll) {
  Map* map = registry_.Find(Create(MapType::kHash, 4, 8, 8));
  uint64_t value = 1;
  for (uint32_t key = 10; key < 15; ++key) {
    map->Update(&key, &value);
  }
  int seen = 0;
  uint32_t key = 0;
  int err = map->GetNextKey(nullptr, &key);
  while (err == 0 && seen < 10) {
    ++seen;
    uint32_t next = 0;
    err = map->GetNextKey(&key, &next);
    key = next;
  }
  EXPECT_EQ(seen, 5);
}

TEST_F(MapsTest, HashBatchBuggyReadsPastBucket) {
  auto* map = static_cast<HashMap*>(
      registry_.Find(Create(MapType::kHash, 4, 16, 8, /*buggy=*/true)));
  uint8_t value[16] = {};
  for (uint32_t key = 0; key < 6; ++key) {
    map->Update(&key, value);
  }
  std::vector<std::vector<uint8_t>> out;
  for (int round = 0; round < 4; ++round) {
    map->LookupBatch(&out, 32);
  }
  bool saw_oob = false;
  for (const KernelReport& report : sink_.reports()) {
    saw_oob |= report.kind == ReportKind::kKasanOob;
  }
  EXPECT_TRUE(saw_oob);
}

TEST_F(MapsTest, HashBatchFixedIsClean) {
  auto* map = static_cast<HashMap*>(
      registry_.Find(Create(MapType::kHash, 4, 16, 8, /*buggy=*/false)));
  uint8_t value[16] = {};
  for (uint32_t key = 0; key < 6; ++key) {
    map->Update(&key, value);
  }
  std::vector<std::vector<uint8_t>> out;
  for (int round = 0; round < 4; ++round) {
    map->LookupBatch(&out, 32);
  }
  EXPECT_TRUE(sink_.empty());
  EXPECT_GT(out.size(), 0u);
}

TEST_F(MapsTest, PercpuArrayUpdatesAllCpus) {
  Map* map = registry_.Find(Create(MapType::kPercpuArray, 4, 8, 2));
  const uint32_t key = 1;
  const uint64_t value = 0x42;
  EXPECT_EQ(map->Update(&key, &value), 0);
  const uint64_t cpu0 = map->Lookup(&key);
  ASSERT_NE(cpu0, 0u);
  uint64_t readback = 0;
  arena_.CopyOut(cpu0, &readback, 8);
  EXPECT_EQ(readback, 0x42u);
}

TEST_F(MapsTest, RingbufOutputWraps) {
  MapDef def;
  def.type = MapType::kRingbuf;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 64;  // ring bytes
  auto* ring = static_cast<RingbufMap*>(registry_.Find(registry_.Create(def)));
  const uint64_t data = arena_.Alloc(32, "payload");
  EXPECT_EQ(ring->Output(data, 32), 0);
  EXPECT_EQ(ring->Output(data, 32), 0);
  EXPECT_EQ(ring->Output(data, 32), 0);  // wraps
  EXPECT_EQ(ring->produced(), 96u);
  EXPECT_EQ(ring->Output(data, 0), -EINVAL);
  EXPECT_EQ(ring->Output(data, 128), -EINVAL);
}

TEST_F(MapsTest, RingbufOutputChecksSourceMemory) {
  MapDef def;
  def.type = MapType::kRingbuf;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 64;
  auto* ring = static_cast<RingbufMap*>(registry_.Find(registry_.Create(def)));
  EXPECT_EQ(ring->Output(0x10, 8), -EFAULT);  // null page source
  EXPECT_FALSE(sink_.empty());
}

TEST_F(MapsTest, TypeNames) {
  EXPECT_STREQ(MapTypeName(MapType::kArray), "array");
  EXPECT_STREQ(MapTypeName(MapType::kHash), "hash");
  EXPECT_STREQ(MapTypeName(MapType::kPercpuArray), "percpu_array");
  EXPECT_STREQ(MapTypeName(MapType::kRingbuf), "ringbuf");
}

}  // namespace
}  // namespace bpf
