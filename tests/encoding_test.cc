// Structural encoding validation (CheckEncoding): the first gate of the
// loader, mirroring the opcode/reserved-field checks at the top of
// bpf_check().

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/ebpf/program.h"

namespace bpf {
namespace {

Program Wrap(std::vector<Insn> insns) {
  Program prog;
  prog.insns = std::move(insns);
  return prog;
}

int Check(std::vector<Insn> insns) { return CheckEncoding(Wrap(std::move(insns)), nullptr); }

TEST(EncodingTest, MinimalOk) {
  EXPECT_EQ(Check({MovImm(kR0, 0), Exit()}), 0);
}

TEST(EncodingTest, EmptyRejected) {
  EXPECT_EQ(Check({}), -EINVAL);
}

TEST(EncodingTest, TooLargeRejected) {
  std::vector<Insn> insns(kMaxInsns + 1, MovImm(kR0, 0));
  insns.back() = Exit();
  EXPECT_EQ(Check(std::move(insns)), -E2BIG);
}

TEST(EncodingTest, InvalidRegisterNumber) {
  Insn insn = MovImm(kR0, 0);
  insn.dst = 11;  // R11 is internal-only
  EXPECT_EQ(Check({insn, Exit()}), -EINVAL);
  insn = MovReg(kR0, kR1);
  insn.src = 15;
  EXPECT_EQ(Check({insn, Exit()}), -EINVAL);
}

TEST(EncodingTest, InvalidAluOpcode) {
  Insn insn;
  insn.opcode = kClassAlu64 | 0xe0;  // 0xe0 is not a valid ALU op
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, AluRegWithReservedImm) {
  Insn insn = AluReg(kAluAdd, kR1, kR2);
  insn.imm = 5;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, AluWithReservedOff) {
  Insn insn = AluImm(kAluAdd, kR1, 5);
  insn.off = 2;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, ShiftOutOfRange) {
  EXPECT_EQ(Check({AluImm(kAluLsh, kR1, 64), MovImm(kR0, 0), Exit()}), -EINVAL);
  EXPECT_EQ(Check({Alu32Imm(kAluLsh, kR1, 32), MovImm(kR0, 0), Exit()}), -EINVAL);
  EXPECT_EQ(Check({AluImm(kAluLsh, kR1, 63), MovImm(kR0, 0), Exit()}), 0);
}

TEST(EncodingTest, DivByZeroImmediate) {
  EXPECT_EQ(Check({AluImm(kAluDiv, kR1, 0), MovImm(kR0, 0), Exit()}), -EINVAL);
  EXPECT_EQ(Check({AluImm(kAluMod, kR1, 0), MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, NegWithOperandRejected) {
  Insn insn = Neg(kR1);
  insn.imm = 1;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, ByteSwapWidths) {
  Insn bswap;
  bswap.opcode = kClassAlu | kAluEnd;
  bswap.dst = kR1;
  bswap.imm = 16;
  EXPECT_EQ(Check({bswap, MovImm(kR0, 0), Exit()}), 0);
  bswap.imm = 24;
  EXPECT_EQ(Check({bswap, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, LdImm64MissingHighSlot) {
  EXPECT_EQ(Check({LdImm64Lo(kR1, 0, 5), Exit()}), -EINVAL);
}

TEST(EncodingTest, LdImm64MalformedHighSlot) {
  Insn hi = LdImm64Hi(0);
  hi.dst = 1;
  EXPECT_EQ(Check({LdImm64Lo(kR1, 0, 5), hi, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, LdImm64BadPseudoSrc) {
  EXPECT_EQ(Check({LdImm64Lo(kR1, 7, 5), LdImm64Hi(5), MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, LegacyPacketLoadRejected) {
  Insn insn;
  insn.opcode = kClassLd | kSizeW | kModeAbs;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, LdxWrongMode) {
  Insn insn = LoadMem(kSizeW, kR0, kR1, 0);
  insn.opcode = kClassLdx | kSizeW | kModeImm;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, LdxReservedImm) {
  Insn insn = LoadMem(kSizeW, kR0, kR1, 0);
  insn.imm = 3;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, StReservedSrc) {
  Insn insn = StoreMemImm(kSizeW, kR1, 0, 7);
  insn.src = 2;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, StxReservedImm) {
  Insn insn = StoreMemReg(kSizeW, kR1, kR2, 0);
  insn.imm = 9;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, AtomicSizes) {
  EXPECT_EQ(Check({AtomicOp(kSizeDw, kR10, kR1, -8, kAtomicAdd), MovImm(kR0, 0), Exit()}), 0);
  EXPECT_EQ(Check({AtomicOp(kSizeW, kR10, kR1, -8, kAtomicAdd), MovImm(kR0, 0), Exit()}), 0);
  EXPECT_EQ(Check({AtomicOp(kSizeH, kR10, kR1, -8, kAtomicAdd), MovImm(kR0, 0), Exit()}),
            -EINVAL);
  EXPECT_EQ(Check({AtomicOp(kSizeB, kR10, kR1, -8, kAtomicAdd), MovImm(kR0, 0), Exit()}),
            -EINVAL);
}

TEST(EncodingTest, AtomicOps) {
  for (const int32_t op : {kAtomicAdd, kAtomicOr, kAtomicAnd, kAtomicXor,
                           kAtomicAdd | kAtomicFetch, kAtomicXchg, kAtomicCmpXchg}) {
    EXPECT_EQ(Check({AtomicOp(kSizeDw, kR10, kR1, -8, op), MovImm(kR0, 0), Exit()}), 0) << op;
  }
  EXPECT_EQ(Check({AtomicOp(kSizeDw, kR10, kR1, -8, 0x33), MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, JumpOutOfRange) {
  EXPECT_EQ(Check({JmpImm(kJmpJeq, kR0, 0, 5), MovImm(kR0, 0), Exit()}), -EINVAL);
  EXPECT_EQ(Check({JmpImm(kJmpJeq, kR0, 0, -2), MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, JmpRegReservedImm) {
  Insn insn = JmpReg(kJmpJeq, kR0, kR1, 1);
  insn.imm = 1;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, MalformedCall) {
  Insn call = CallHelper(1);
  call.dst = 1;
  EXPECT_EQ(Check({call, MovImm(kR0, 0), Exit()}), -EINVAL);
  call = CallHelper(1);
  call.off = 4;
  EXPECT_EQ(Check({call, MovImm(kR0, 0), Exit()}), -EINVAL);
  call = CallHelper(1);
  call.src = 5;  // invalid pseudo
  EXPECT_EQ(Check({call, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, MalformedExit) {
  Insn exit_insn = Exit();
  exit_insn.imm = 1;
  EXPECT_EQ(Check({MovImm(kR0, 0), exit_insn}), -EINVAL);
}

TEST(EncodingTest, Jmp32CallRejected) {
  Insn insn = CallHelper(1);
  insn.opcode = kClassJmp32 | kJmpCall;
  EXPECT_EQ(Check({insn, MovImm(kR0, 0), Exit()}), -EINVAL);
}

TEST(EncodingTest, FallOffEndRejected) {
  EXPECT_EQ(Check({MovImm(kR0, 0), MovImm(kR1, 1)}), -EINVAL);
}

TEST(EncodingTest, EndsWithBackwardJaOk) {
  // mov; ja -2 (self loop): structurally fine, semantically caught later.
  EXPECT_EQ(Check({MovImm(kR0, 0), JmpA(-2)}), 0);
}

TEST(EncodingTest, LogMessagePopulated) {
  std::string log;
  Program prog;
  CheckEncoding(prog, &log);
  EXPECT_NE(log.find("empty program"), std::string::npos);
}

}  // namespace
}  // namespace bpf
