// End-to-end reproductions of every injected vulnerability (Table 2 of the
// paper + CVE-2022-23222): with the bug disabled the trigger program is
// rejected (or runs cleanly); with it enabled the program loads and the
// corresponding indicator fires.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace bpf {
namespace {

class BugInjectionTest : public ::testing::Test {
 protected:
  // Builds a sanitizer-enabled kernel with the given bug set.
  void Boot(BugConfig bugs, KernelVersion version = KernelVersion::kBpfNext) {
    kernel_ = std::make_unique<Kernel>(version, bugs);
    bpf_ = std::make_unique<Bpf>(*kernel_);
    BpfAsan::Register(*kernel_);
    sanitizer_ = std::make_unique<bvf::Sanitizer>();
    bpf_->set_instrument(sanitizer_->Hook());
  }

  int CreateHash(uint32_t key_size = 8, uint32_t value_size = 16) {
    MapDef def;
    def.type = MapType::kHash;
    def.key_size = key_size;
    def.value_size = value_size;
    def.max_entries = 8;
    return bpf_->MapCreate(def);
  }

  int CreateArray(uint32_t value_size = 16) {
    MapDef def;
    def.type = MapType::kArray;
    def.key_size = 4;
    def.value_size = value_size;
    def.max_entries = 4;
    return bpf_->MapCreate(def);
  }

  bool HasReport(ReportKind kind) const {
    for (const KernelReport& report : kernel_->reports().reports()) {
      if (report.kind == kind) {
        return true;
      }
    }
    return false;
  }

  std::string AllReports() const {
    std::string out;
    for (const KernelReport& report : kernel_->reports().reports()) {
      out += report.Signature() + " | " + report.details + "\n";
    }
    return out;
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Bpf> bpf_;
  std::unique_ptr<bvf::Sanitizer> sanitizer_;
};

// ---- Bug #1: nullness propagation (Listing 2) ----

Program Bug1Program(int hash_fd) {
  ProgramBuilder b(ProgType::kKprobe);
  // #1: r6 = PTR_TO_BTF_ID that is NULL at runtime (kernel thread's mm).
  b.LdBtfId(kR6, kBtfMmStruct);
  // key 7777 is never inserted -> lookup misses -> r0 NULL at runtime.
  b.StoreImm(kSizeDw, kR10, -8, 7777);
  b.LdMapFd(kR1, hash_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  // #6: equality comparison; in the equal path the buggy verifier marks r0
  // non-null because r6 is "trusted non-null".
  b.JmpIfReg(kJmpJne, kR0, kR6, 1);
  // #7: dereference in the equal path; at runtime r0 == 0.
  b.Load(kSizeDw, kR8, kR0, 0);
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug1RejectedWhenFixed) {
  Boot(BugConfig::None());
  const int hash_fd = CreateHash();
  VerifierResult result;
  EXPECT_EQ(bpf_->ProgLoad(Bug1Program(hash_fd), &result), -EACCES) << result.log;
}

TEST_F(BugInjectionTest, Bug1NullDerefCaughtBySanitizer) {
  BugConfig bugs;
  bugs.bug1_nullness_propagation = true;
  Boot(bugs);
  const int hash_fd = CreateHash();
  VerifierResult result;
  const int fd = bpf_->ProgLoad(Bug1Program(hash_fd), &result);
  ASSERT_GT(fd, 0) << result.log;
  bpf_->ProgTestRun(fd);
  EXPECT_TRUE(HasReport(ReportKind::kBpfAsanNullDeref)) << AllReports();
}

// ---- Bug #2: task_struct bound checked against a page ----

Program Bug2Program() {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Load(kSizeDw, kR7, kR0, 200);  // task_struct is 192 bytes
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug2RejectedWhenFixed) {
  Boot(BugConfig::None());
  EXPECT_EQ(bpf_->ProgLoad(Bug2Program()), -EACCES);
}

TEST_F(BugInjectionTest, Bug2OobCaughtBySanitizer) {
  BugConfig bugs;
  bugs.bug2_task_struct_bounds = true;
  Boot(bugs);
  VerifierResult result;
  const int fd = bpf_->ProgLoad(Bug2Program(), &result);
  ASSERT_GT(fd, 0) << result.log;
  bpf_->ProgTestRun(fd);
  EXPECT_TRUE(HasReport(ReportKind::kBpfAsanOob)) << AllReports();
}

// ---- Bug #3: stale caller-saved bounds across kfunc calls ----

Program Bug3Program(int array_fd) {
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, array_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 10);
  b.Mov(kR6, kR0);                    // map value
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR1, kR0);
  b.Load(kSizeW, kR3, kR6, 0);        // variable scalar from the map value...
  b.And(kR3, 7);                      // ...range-refined into [0, 7]
  b.Kfunc(kKfuncTaskAcquire);
  b.Mov(kR1, kR0);
  b.Kfunc(kKfuncTaskRelease);
  b.Add(kR6, kR3);                    // r3 is garbage at runtime (kfuncs clobber)
  b.Load(kSizeDw, kR7, kR6, 0);
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug3RejectedWhenFixed) {
  Boot(BugConfig::None());
  const int array_fd = CreateArray(64);
  VerifierResult result;
  EXPECT_EQ(bpf_->ProgLoad(Bug3Program(array_fd), &result), -EACCES) << result.log;
}

TEST_F(BugInjectionTest, Bug3StaleBoundsCaughtByAluCheck) {
  BugConfig bugs;
  bugs.bug3_kfunc_backtrack = true;
  Boot(bugs);
  const int array_fd = CreateArray(64);
  VerifierResult result;
  const int fd = bpf_->ProgLoad(Bug3Program(array_fd), &result);
  ASSERT_GT(fd, 0) << result.log;
  bpf_->ProgTestRun(fd);
  EXPECT_TRUE(HasReport(ReportKind::kAluLimitViolation)) << AllReports();
}

// ---- Bug #4: trace_printk recursion ----

Program Bug4Program() {
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeDw, kR10, -8, 0x21626d);  // "mb!" format bytes
  b.Mov(kR1, kR10);
  b.Add(kR1, -8);
  b.Mov(kR2, 4);
  b.Mov(kR3, 0);
  b.Call(kHelperTracePrintk);
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug4AttachRejectedWhenFixed) {
  Boot(BugConfig::None());
  const int fd = bpf_->ProgLoad(Bug4Program());
  ASSERT_GT(fd, 0);
  EXPECT_EQ(bpf_->ProgAttach(fd, TracepointId::kTracePrintk), -EINVAL);
}

TEST_F(BugInjectionTest, Bug4RecursionCaughtByLockdep) {
  BugConfig bugs;
  bugs.bug4_trace_printk_recursion = true;
  Boot(bugs);
  const int fd = bpf_->ProgLoad(Bug4Program());
  ASSERT_GT(fd, 0);
  ASSERT_EQ(bpf_->ProgAttach(fd, TracepointId::kTracePrintk), 0);
  bpf_->FireEvent(TracepointId::kTracePrintk);
  EXPECT_TRUE(HasReport(ReportKind::kLockdepRecursion) ||
              HasReport(ReportKind::kLockdepInconsistent))
      << AllReports();
}

// ---- Bug #5: contention_begin re-entrancy (Fig. 2) ----

Program Bug5Program(int hash_fd) {
  ProgramBuilder b(ProgType::kTracepoint);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR2, kR0);
  b.LdMapFd(kR1, hash_fd);
  b.Mov(kR3, 0);
  b.Mov(kR4, 1);
  b.Call(kHelperTaskStorageGet);  // acquires the storage lock
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug5AttachRejectedWhenFixed) {
  Boot(BugConfig::None());
  const int hash_fd = CreateHash();
  VerifierResult result;
  const int fd = bpf_->ProgLoad(Bug5Program(hash_fd), &result);
  ASSERT_GT(fd, 0) << result.log;
  EXPECT_EQ(bpf_->ProgAttach(fd, TracepointId::kContentionBegin), -EINVAL);
}

TEST_F(BugInjectionTest, Bug5DeadlockCaughtByLockdep) {
  BugConfig bugs;
  bugs.bug5_contention_begin = true;
  Boot(bugs);
  const int hash_fd = CreateHash();
  const int fd = bpf_->ProgLoad(Bug5Program(hash_fd));
  ASSERT_GT(fd, 0);
  ASSERT_EQ(bpf_->ProgAttach(fd, TracepointId::kContentionBegin), 0);
  // Running the program once enters task_storage_get, which raises
  // contention_begin, re-entering the program: recursive acquisition.
  bpf_->ProgTestRun(fd);
  EXPECT_TRUE(HasReport(ReportKind::kLockdepRecursion) ||
              HasReport(ReportKind::kLockdepInconsistent))
      << AllReports();
}

// ---- Bug #6: bpf_send_signal from irq context ----

Program Bug6Program() {
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR1, 9);
  b.Call(kHelperSendSignal);
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug6NoPanicWhenFixed) {
  Boot(BugConfig::None());
  const int fd = bpf_->ProgLoad(Bug6Program());
  ASSERT_GT(fd, 0);
  ASSERT_EQ(bpf_->ProgAttach(fd, TracepointId::kContentionBegin), 0);
  bpf_->FireEvent(TracepointId::kContentionBegin);
  EXPECT_FALSE(kernel_->reports().panicked()) << AllReports();
}

TEST_F(BugInjectionTest, Bug6PanicFromIrqContext) {
  BugConfig bugs;
  bugs.bug6_send_signal = true;
  Boot(bugs);
  const int fd = bpf_->ProgLoad(Bug6Program());
  ASSERT_GT(fd, 0);
  ASSERT_EQ(bpf_->ProgAttach(fd, TracepointId::kContentionBegin), 0);
  bpf_->FireEvent(TracepointId::kContentionBegin);
  EXPECT_TRUE(kernel_->reports().panicked()) << AllReports();
}

// ---- Bug #7: dispatcher update/run race ----

TEST_F(BugInjectionTest, Bug7DispatcherRace) {
  ProgramBuilder b(ProgType::kXdp);
  b.RetImm(2);  // XDP_PASS
  {
    Boot(BugConfig::None());
    const int fd = bpf_->ProgLoad(b.Build());
    ASSERT_GT(fd, 0);
    ASSERT_EQ(bpf_->XdpInstall(fd), 0);
    EXPECT_EQ(bpf_->XdpRun().err, 0);
    EXPECT_FALSE(HasReport(ReportKind::kKasanNullDeref));
  }
  {
    BugConfig bugs;
    bugs.bug7_dispatcher_sync = true;
    Boot(bugs);
    const int fd = bpf_->ProgLoad(b.Build());
    ASSERT_GT(fd, 0);
    ASSERT_EQ(bpf_->XdpInstall(fd), 0);
    bpf_->XdpRun();
    EXPECT_TRUE(HasReport(ReportKind::kKasanNullDeref)) << AllReports();
  }
}

// ---- Bug #8: kmemdup of large rewritten programs ----

Program BigProgram() {
  ProgramBuilder b;
  // Stores through a copied stack pointer are NOT covered by the R10
  // reduction, so sanitation inflates each into a dispatch sequence —
  // pushing the rewritten image past KMALLOC_MAX (the bug #8 trigger).
  b.Mov(kR6, kR10);
  b.Add(kR6, -8);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  for (int i = 0; i < 400; ++i) {
    b.StoreImm(kSizeDw, kR6, 0, i);
  }
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug8KmemdupFailureWarns) {
  {
    Boot(BugConfig::None());
    const int fd = bpf_->ProgLoad(BigProgram());
    EXPECT_GT(fd, 0);
    EXPECT_FALSE(HasReport(ReportKind::kWarn)) << AllReports();
  }
  {
    BugConfig bugs;
    bugs.bug8_kmemdup = true;
    Boot(bugs);
    bpf_->ProgLoad(BigProgram());
    EXPECT_TRUE(HasReport(ReportKind::kWarn)) << AllReports();
  }
}

// ---- Bug #9: hash map bucket iteration under contention ----

TEST_F(BugInjectionTest, Bug9BatchedLookupOob) {
  BugConfig bugs;
  bugs.bug9_bucket_iteration = true;
  Boot(bugs);
  const int hash_fd = CreateHash(4, 16);
  for (uint32_t k = 0; k < 6; ++k) {
    uint8_t value[16] = {};
    bpf_->MapUpdateElem(hash_fd, &k, value);
  }
  for (int round = 0; round < 4; ++round) {
    bpf_->MapLookupBatch(hash_fd, 16);
  }
  EXPECT_TRUE(HasReport(ReportKind::kKasanOob)) << AllReports();
}

TEST_F(BugInjectionTest, Bug9NoOobWhenFixed) {
  Boot(BugConfig::None());
  const int hash_fd = CreateHash(4, 16);
  for (uint32_t k = 0; k < 6; ++k) {
    uint8_t value[16] = {};
    bpf_->MapUpdateElem(hash_fd, &k, value);
  }
  for (int round = 0; round < 4; ++round) {
    bpf_->MapLookupBatch(hash_fd, 16);
  }
  EXPECT_FALSE(HasReport(ReportKind::kKasanOob)) << AllReports();
}

// ---- Bug #10: irq_work misuse in perf_event_output ----

Program Bug10Program(int array_fd) {
  ProgramBuilder b(ProgType::kTracepoint);
  b.StoreImm(kSizeDw, kR10, -8, 1);
  b.StoreImm(kSizeDw, kR10, -16, 2);
  b.Mov(kR6, kR1);  // keep ctx
  b.Mov(kR1, kR6);
  b.LdMapFd(kR2, array_fd);
  b.Mov(kR3, 0);
  b.Mov(kR4, kR10);
  b.Add(kR4, -16);
  b.Mov(kR5, 16);
  b.Call(kHelperPerfEventOutput);
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, Bug10LockBugUnderSchedSwitch) {
  BugConfig bugs;
  bugs.bug10_irq_work = true;
  Boot(bugs);
  const int array_fd = CreateArray();
  VerifierResult result;
  const int fd = bpf_->ProgLoad(Bug10Program(array_fd), &result);
  ASSERT_GT(fd, 0) << result.log;
  ASSERT_EQ(bpf_->ProgAttach(fd, TracepointId::kSchedSwitch), 0);
  bpf_->FireEvent(TracepointId::kSchedSwitch);  // fired under rq_lock
  EXPECT_TRUE(HasReport(ReportKind::kLockdepRecursion) ||
              HasReport(ReportKind::kLockdepInconsistent))
      << AllReports();
}

TEST_F(BugInjectionTest, Bug10NoLockBugWhenFixed) {
  Boot(BugConfig::None());
  const int array_fd = CreateArray();
  const int fd = bpf_->ProgLoad(Bug10Program(array_fd));
  ASSERT_GT(fd, 0);
  ASSERT_EQ(bpf_->ProgAttach(fd, TracepointId::kSchedSwitch), 0);
  bpf_->FireEvent(TracepointId::kSchedSwitch);
  EXPECT_FALSE(HasReport(ReportKind::kLockdepRecursion)) << AllReports();
}

// ---- Bug #11: offloaded XDP program on the host path ----

TEST_F(BugInjectionTest, Bug11OffloadOnHost) {
  ProgramBuilder b(ProgType::kXdp);
  b.RetImm(2);
  Program prog = b.Build();
  prog.offload_requested = true;
  {
    Boot(BugConfig::None());
    const int fd = bpf_->ProgLoad(prog);
    ASSERT_GT(fd, 0);
    EXPECT_EQ(bpf_->XdpInstall(fd), -EINVAL);
  }
  {
    BugConfig bugs;
    bugs.bug11_xdp_offload = true;
    Boot(bugs);
    const int fd = bpf_->ProgLoad(prog);
    ASSERT_GT(fd, 0);
    ASSERT_EQ(bpf_->XdpInstall(fd), 0);
    bpf_->XdpRun();
    EXPECT_TRUE(HasReport(ReportKind::kWarn)) << AllReports();
  }
}

// ---- CVE-2022-23222 (Listing 1): ALU on nullable pointers ----

Program CveProgram(int hash_fd) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 7777);  // guaranteed-miss key
  b.LdMapFd(kR1, hash_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  b.Add(kR0, 8);  // ALU on map_value_or_null: the missing check
  // Null check after the arithmetic: at runtime r0 == 8, so the "non-null"
  // branch is taken while the pointer is garbage.
  b.JmpIf(kJmpJeq, kR0, 0, 1);
  b.Load(kSizeDw, kR8, kR0, 0);
  b.RetImm(0);
  return b.Build();
}

TEST_F(BugInjectionTest, CveRejectedWhenFixed) {
  Boot(BugConfig::None(), KernelVersion::kV5_15);
  const int hash_fd = CreateHash();
  VerifierResult result;
  EXPECT_EQ(bpf_->ProgLoad(CveProgram(hash_fd), &result), -EACCES) << result.log;
}

TEST_F(BugInjectionTest, CveInvalidAccessCaught) {
  BugConfig bugs;
  bugs.cve_2022_23222 = true;
  Boot(bugs, KernelVersion::kV5_15);
  const int hash_fd = CreateHash();
  VerifierResult result;
  const int fd = bpf_->ProgLoad(CveProgram(hash_fd), &result);
  ASSERT_GT(fd, 0) << result.log;
  bpf_->ProgTestRun(fd);
  EXPECT_TRUE(HasReport(ReportKind::kBpfAsanNullDeref) ||
              HasReport(ReportKind::kBpfAsanWild))
      << AllReports();
}

// With every bug disabled, a healthy workload produces no reports at all
// (false-positive check for the oracle).
TEST_F(BugInjectionTest, NoFalsePositivesOnFixedKernel) {
  Boot(BugConfig::None());
  const int hash_fd = CreateHash();
  const int array_fd = CreateArray(64);

  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, array_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);
  b.StoreImm(kSizeDw, kR0, 0, 42);
  b.Load(kSizeDw, kR7, kR0, 8);
  b.Call(kHelperKtimeGetNs);
  b.RetImm(0);
  VerifierResult result;
  const int fd = bpf_->ProgLoad(b.Build(), &result);
  ASSERT_GT(fd, 0) << result.log;
  for (int i = 0; i < 4; ++i) {
    bpf_->ProgTestRun(fd, 64, i);
  }
  const int fd2 = bpf_->ProgLoad(Bug5Program(hash_fd), &result);
  ASSERT_GT(fd2, 0) << result.log;
  bpf_->ProgTestRun(fd2);
  EXPECT_TRUE(kernel_->reports().empty()) << AllReports();
}

}  // namespace
}  // namespace bpf
