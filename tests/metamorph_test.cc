// Metamorphic oracle subsystem tests (DESIGN.md §11): per-transform validity
// and semantics preservation on a curated accepted corpus, engine parity of
// witnesses, oracle determinism, the bug13 injected-asymmetry detection that
// base indicators miss, replay through ExecuteCase, and the mmorph
// checkpoint line round-trip.

#include <cerrno>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/checkpoint.h"
#include "src/core/fuzzer.h"
#include "src/core/metamorph/metamorph.h"
#include "src/core/metamorph/transform.h"
#include "src/core/metamorph/witness.h"
#include "src/core/repro.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/insn.h"
#include "src/kernel/rng.h"

namespace bvf {
namespace {

CampaignOptions CorrectKernelOptions() {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::None();  // a correct verifier/runtime pair
  options.limits.wall_budget_ms = 2000;
  return options;
}

// Accepted cases from the structured generator: the curated corpus every
// semantics-preservation test runs over.
std::vector<FuzzCase> AcceptedCorpus(const CampaignOptions& options, size_t want) {
  std::vector<FuzzCase> corpus;
  StructuredGenerator generator(options.version);
  bpf::Rng rng(11);
  for (int i = 0; i < 400 && corpus.size() < want; ++i) {
    FuzzCase fc = generator.Generate(rng);
    if (CollectWitness(fc.prog, fc, options).accepted) {
      corpus.push_back(std::move(fc));
    }
  }
  return corpus;
}

// r0 = 5; loop: r0 -= 1; if r0 != 0 goto loop; exit. Accepted because the
// mov-imm path tracks the constant bound; its only 64-bit mov-imm is the
// counter, so kConstRemat deterministically rewrites it into ld_imm64 — the
// exact shape bug13 pessimizes into an "infinite loop detected" rejection.
FuzzCase CountdownLoopCase() {
  FuzzCase fc;
  fc.prog.type = bpf::ProgType::kSocketFilter;
  fc.prog.insns = {
      bpf::MovImm(bpf::kR0, 5),
      bpf::AluImm(bpf::kAluSub, bpf::kR0, 1),
      bpf::JmpImm(bpf::kJmpJne, bpf::kR0, 0, -2),
      bpf::Exit(),
  };
  fc.test_runs = 2;
  return fc;
}

TEST(MetamorphTransformTest, ValidityPredicateHonored) {
  const CampaignOptions options = CorrectKernelOptions();
  const std::vector<FuzzCase> corpus = AcceptedCorpus(options, 12);
  ASSERT_GE(corpus.size(), 8u);
  for (size_t c = 0; c < corpus.size(); ++c) {
    for (int t = 0; t < kNumTransformKinds; ++t) {
      const TransformKind kind = static_cast<TransformKind>(t);
      const bool applicable = TransformApplicable(kind, corpus[c].prog);
      bpf::Program variant = corpus[c].prog;
      bpf::Rng rng(MetamorphSeed(1, ProgramFnv(corpus[c].prog), t));
      const bool applied = ApplyTransform(kind, variant, rng);
      EXPECT_EQ(applied, applicable)
          << "case " << c << " transform " << TransformKindName(kind);
      if (!applied) {
        // Rejected transforms must leave the program untouched.
        EXPECT_EQ(ProgramFnv(variant), ProgramFnv(corpus[c].prog));
      } else {
        // Applied transforms must change the instruction stream and keep it
        // structurally loadable.
        EXPECT_NE(ProgramFnv(variant), ProgramFnv(corpus[c].prog))
            << "case " << c << " transform " << TransformKindName(kind);
        EXPECT_EQ(bpf::CheckEncoding(variant, nullptr), 0)
            << "case " << c << " transform " << TransformKindName(kind);
      }
    }
  }
}

TEST(MetamorphTransformTest, TransformsPreserveVerdictAndWitness) {
  const CampaignOptions options = CorrectKernelOptions();
  const std::vector<FuzzCase> corpus = AcceptedCorpus(options, 12);
  ASSERT_GE(corpus.size(), 8u);
  size_t variants_checked = 0;
  for (size_t c = 0; c < corpus.size(); ++c) {
    const ExecWitness base = CollectWitness(corpus[c].prog, corpus[c], options);
    ASSERT_TRUE(base.accepted);
    for (int t = 0; t < kNumTransformKinds; ++t) {
      const TransformKind kind = static_cast<TransformKind>(t);
      bpf::Program variant = corpus[c].prog;
      bpf::Rng rng(MetamorphSeed(2, ProgramFnv(corpus[c].prog), t));
      if (!ApplyTransform(kind, variant, rng)) {
        continue;
      }
      const ExecWitness var = CollectWitness(variant, corpus[c], options);
      EXPECT_TRUE(var.accepted)
          << "verdict flipped on a correct kernel: case " << c << " transform "
          << TransformKindName(kind);
      EXPECT_TRUE(base.SameExecution(var))
          << "witness diverged on a correct kernel: case " << c << " transform "
          << TransformKindName(kind);
      EXPECT_EQ(base.report_kinds, var.report_kinds)
          << "indicator set diverged: case " << c << " transform "
          << TransformKindName(kind);
      ++variants_checked;
    }
  }
  EXPECT_GE(variants_checked, 30u);  // the corpus must actually exercise transforms
}

TEST(MetamorphTransformTest, WitnessIdenticalAcrossEngines) {
  CampaignOptions decoded = CorrectKernelOptions();
  CampaignOptions legacy = CorrectKernelOptions();
  decoded.interp_engine = bpf::ExecEngine::kDecoded;
  legacy.interp_engine = bpf::ExecEngine::kLegacy;
  const std::vector<FuzzCase> corpus = AcceptedCorpus(decoded, 8);
  ASSERT_GE(corpus.size(), 6u);
  for (const FuzzCase& fc : corpus) {
    const ExecWitness a = CollectWitness(fc.prog, fc, decoded);
    const ExecWitness b = CollectWitness(fc.prog, fc, legacy);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_TRUE(a.SameExecution(b));
    EXPECT_EQ(a.report_kinds, b.report_kinds);
  }
}

TEST(MetamorphOracleTest, ExamineIsDeterministic) {
  CampaignOptions options = CorrectKernelOptions();
  options.bugs = bpf::BugConfig::All();
  options.metamorph = true;
  options.metamorph_k = 3;
  const std::vector<FuzzCase> corpus = AcceptedCorpus(CorrectKernelOptions(), 6);
  ASSERT_GE(corpus.size(), 4u);
  const MetamorphOracle oracle(options);
  for (const FuzzCase& fc : corpus) {
    const MetamorphOracle::Result a = oracle.Examine(fc, 1);
    const MetamorphOracle::Result b = oracle.Examine(fc, 1);
    EXPECT_EQ(a.bases_examined, b.bases_examined);
    EXPECT_EQ(a.variants_executed, b.variants_executed);
    EXPECT_EQ(a.verdict_divergences, b.verdict_divergences);
    EXPECT_EQ(a.witness_divergences, b.witness_divergences);
    EXPECT_EQ(a.sanitizer_divergences, b.sanitizer_divergences);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (size_t i = 0; i < a.findings.size(); ++i) {
      EXPECT_EQ(a.findings[i].signature, b.findings[i].signature);
      EXPECT_EQ(a.findings[i].details, b.findings[i].details);
    }
  }
}

TEST(MetamorphOracleTest, Bug13CaughtViaVerdictDivergence) {
  const FuzzCase fc = CountdownLoopCase();

  // On a correct kernel the const-remat variant stays accepted.
  {
    const CampaignOptions clean = CorrectKernelOptions();
    const ExecWitness base = CollectWitness(fc.prog, fc, clean);
    ASSERT_TRUE(base.accepted);
    bpf::Program variant = fc.prog;
    bpf::Rng rng(1);
    ASSERT_TRUE(ApplyTransform(TransformKind::kConstRemat, variant, rng));
    ASSERT_TRUE(variant.insns[0].IsLdImm64());
    EXPECT_TRUE(CollectWitness(variant, fc, clean).accepted);
  }

  // Under bug13 the base still loads (mov-imm keeps the constant) but the
  // ld_imm64 spelling loses it, the loop bound becomes unprovable, and the
  // variant is spuriously rejected — the divergence the oracle must flag.
  CampaignOptions buggy = CorrectKernelOptions();
  buggy.bugs = bpf::BugConfig::All();
  buggy.metamorph = true;
  buggy.metamorph_k = 8;  // enough variants that one draws const-remat
  const ExecWitness base = CollectWitness(fc.prog, fc, buggy);
  ASSERT_TRUE(base.accepted);
  bpf::Program variant = fc.prog;
  bpf::Rng rng(1);
  ASSERT_TRUE(ApplyTransform(TransformKind::kConstRemat, variant, rng));
  const ExecWitness rejected = CollectWitness(variant, fc, buggy);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.load_err, -EINVAL);

  // Base-campaign indicators are silent on this case: the bug is invisible
  // without the metamorphic comparison.
  EXPECT_TRUE(base.report_kinds.empty());

  const MetamorphOracle oracle(buggy);
  const MetamorphOracle::Result result = oracle.Examine(fc, 42);
  EXPECT_GE(result.verdict_divergences, 1u);
  EXPECT_EQ(result.escalated, CaseOutcome::kVerdictDivergence);
  bool triaged = false;
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.indicator, 4);
    EXPECT_EQ(finding.iteration, 42u);
    if (finding.triaged == KnownBug::kBug13LdImm64Pessimize) {
      triaged = true;
      EXPECT_EQ(finding.kind, bpf::ReportKind::kMetamorphVerdictDivergence);
    }
  }
  EXPECT_TRUE(triaged);

  // And the finding replays through the triage pipeline: ExecuteCase with
  // metamorph on reproduces the signature, with it off it cannot.
  std::set<std::string> signatures = ExecuteCase(fc, buggy);
  bool replayed = false;
  for (const Finding& finding : result.findings) {
    replayed = replayed || signatures.count(finding.signature) != 0;
  }
  EXPECT_TRUE(replayed);
  CampaignOptions off = buggy;
  off.metamorph = false;
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(ExecuteCase(fc, off).count(finding.signature), 0u);
  }
}

TEST(MetamorphOracleTest, CampaignFindsBug13OnlyWithMetamorph) {
  CampaignOptions options = CorrectKernelOptions();
  options.bugs = bpf::BugConfig::All();
  options.iterations = 120;
  options.seed = 7;
  options.metamorph = true;
  options.metamorph_k = 2;

  StructuredGenerator generator(options.version);
  Fuzzer on(generator, options);
  const CampaignStats with_oracle = on.Run();
  EXPECT_TRUE(with_oracle.FoundBug(KnownBug::kBug13LdImm64Pessimize));
  EXPECT_GT(with_oracle.metamorph_bases, 0u);
  EXPECT_GT(with_oracle.metamorph_variants, with_oracle.metamorph_bases);
  EXPECT_GT(with_oracle.metamorph_verdict_divergences, 0u);
  const auto escalated = with_oracle.outcomes.find(CaseOutcome::kVerdictDivergence);
  ASSERT_NE(escalated, with_oracle.outcomes.end());
  EXPECT_GT(escalated->second, 0u);

  options.metamorph = false;
  StructuredGenerator generator_off(options.version);
  Fuzzer off(generator_off, options);
  const CampaignStats without_oracle = off.Run();
  EXPECT_FALSE(without_oracle.FoundBug(KnownBug::kBug13LdImm64Pessimize));
  EXPECT_EQ(without_oracle.metamorph_variants, 0u);
}

TEST(MetamorphOracleTest, ConfirmationClassifiesDivergenceDeterministic) {
  CampaignOptions options = CorrectKernelOptions();
  options.bugs = bpf::BugConfig::All();
  options.iterations = 120;
  options.seed = 7;
  options.metamorph = true;
  options.confirm_runs = 3;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  bool saw_indicator4 = false;
  for (const Finding& finding : stats.findings) {
    if (finding.indicator != 4) {
      continue;
    }
    saw_indicator4 = true;
    EXPECT_EQ(finding.confirmation, Confirmation::kDeterministic)
        << finding.signature;
    EXPECT_EQ(finding.confirm_hits, 3);
  }
  EXPECT_TRUE(saw_indicator4);
}

TEST(MetamorphCheckpointTest, MmorphCountersRoundTrip) {
  CampaignCheckpoint cp;
  cp.fingerprint = "test";
  cp.next_iteration = 9;
  cp.stats.tool = "bvf";
  cp.stats.metamorph_bases = 101;
  cp.stats.metamorph_variants = 202;
  cp.stats.metamorph_verdict_divergences = 3;
  cp.stats.metamorph_witness_divergences = 2;
  cp.stats.metamorph_sanitizer_divergences = 1;

  const std::string path = ::testing::TempDir() + "/mmorph_roundtrip.ckpt";
  ASSERT_EQ(SaveCheckpoint(path, cp), 0);
  CampaignCheckpoint loaded;
  std::string error;
  ASSERT_EQ(LoadCheckpoint(path, &loaded, &error), 0) << error;
  EXPECT_EQ(loaded.stats.metamorph_bases, 101u);
  EXPECT_EQ(loaded.stats.metamorph_variants, 202u);
  EXPECT_EQ(loaded.stats.metamorph_verdict_divergences, 3u);
  EXPECT_EQ(loaded.stats.metamorph_witness_divergences, 2u);
  EXPECT_EQ(loaded.stats.metamorph_sanitizer_divergences, 1u);
  std::remove(path.c_str());

  // The metamorph counters must stay out of the result digest (same
  // discipline as the cache counters).
  CampaignStats plain;
  plain.tool = "bvf";
  CampaignStats with_counters = plain;
  with_counters.metamorph_bases = 7;
  with_counters.metamorph_variants = 14;
  EXPECT_EQ(StatsDigest(plain), StatsDigest(with_counters));
}

}  // namespace
}  // namespace bvf
