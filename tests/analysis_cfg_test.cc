// CFG construction: block boundaries across jumps, calls, exits and ld_imm64
// pairs; subprogram partitioning; robustness to structurally invalid targets.

#include <gtest/gtest.h>

#include "src/analysis/cfg.h"
#include "src/ebpf/insn.h"

namespace bvf {
namespace {

using namespace bpf;

Program Prog(std::vector<Insn> insns) {
  Program prog;
  prog.insns = std::move(insns);
  return prog;
}

TEST(CfgTest, StraightLineIsOneBlock) {
  const Program prog = Prog({
      MovImm(kR0, 1),
      AluImm(kAluAdd, kR0, 2),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].first, 0);
  EXPECT_EQ(cfg.blocks[0].last, 2);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
  EXPECT_EQ(cfg.subprog_entry, std::vector<int>{0});
}

TEST(CfgTest, DiamondFromConditionalJump) {
  //  0: r0 = 1
  //  1: if r0 == 0 goto +2   -> bb0, succs {bb1 fallthrough, bb2 taken}
  //  2: r0 = 2               -> bb1
  //  3: goto +1                 (skips insn 4, lands on the exit)
  //  4: r0 = 3               -> bb2 (branch target), falls into the exit
  //  5: exit                 -> bb3, the join
  const Program prog = Prog({
      MovImm(kR0, 1),
      JmpImm(kJmpJeq, kR0, 0, 2),
      MovImm(kR0, 2),
      JmpA(1),
      MovImm(kR0, 3),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  EXPECT_EQ(cfg.BlockAt(0), 0);
  EXPECT_EQ(cfg.BlockAt(2), 1);
  EXPECT_EQ(cfg.BlockAt(4), 2);
  EXPECT_EQ(cfg.BlockAt(5), 3);
  // Entry branches to both arms; both arms reach the join block.
  ASSERT_EQ(cfg.blocks[0].succs.size(), 2u);
  EXPECT_EQ(cfg.blocks[1].succs, std::vector<int>{3});
  EXPECT_EQ(cfg.blocks[2].succs, std::vector<int>{3});
  EXPECT_EQ(cfg.blocks[3].preds.size(), 2u);
  const std::vector<bool> reached = cfg.ReachableBlocks();
  for (bool r : reached) EXPECT_TRUE(r);
}

TEST(CfgTest, LdImm64HighSlotSharesBlock) {
  Program prog = Prog({
      LdImm64Lo(kR1, 0, 0x1122334455667788ull),
      LdImm64Hi(0x1122334455667788ull),
      MovImm(kR0, 0),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.BlockAt(0), 0);
  EXPECT_EQ(cfg.BlockAt(1), 0);  // the data slot
  EXPECT_EQ(cfg.BlockAt(3), 0);
}

TEST(CfgTest, CallCreatesSubprogramWithCallEdge) {
  //  0: r1 = 1
  //  1: call +2  (target insn 4)
  //  2: r0 = 0
  //  3: exit
  //  4: r0 = r1      <- subprog 1 entry
  //  5: exit
  const Program prog = Prog({
      MovImm(kR1, 1),
      CallPseudoFunc(2),
      MovImm(kR0, 0),
      Exit(),
      MovReg(kR0, kR1),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  ASSERT_EQ(cfg.subprog_entry.size(), 2u);
  EXPECT_EQ(cfg.subprog_entry[1], 4);
  const int caller = cfg.BlockAt(1);
  const int cont = cfg.BlockAt(2);
  const int callee = cfg.BlockAt(4);
  // The call block's intraprocedural successor is the continuation; the
  // callee hangs off the separate call edge.
  EXPECT_EQ(cfg.blocks[caller].succs, std::vector<int>{cont});
  EXPECT_EQ(cfg.blocks[caller].call_target, callee);
  EXPECT_EQ(cfg.blocks[callee].subprog, 1);
  EXPECT_EQ(cfg.blocks[caller].subprog, 0);
  EXPECT_TRUE(cfg.IsEntryBlock(callee));
  // Reachability crosses the call edge.
  EXPECT_TRUE(cfg.ReachableBlocks()[callee]);
}

TEST(CfgTest, OutOfRangeTargetDropsEdge) {
  // A jump past the end of the program: structurally invalid (CheckEncoding
  // rejects it), but BuildCfg must not crash or follow the edge.
  const Program prog = Prog({
      MovImm(kR0, 0),
      JmpImm(kJmpJeq, kR0, 0, 100),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const int b = cfg.BlockAt(1);
  // Only the fall-through edge survives.
  EXPECT_EQ(cfg.blocks[b].succs, std::vector<int>{cfg.BlockAt(2)});
}

TEST(CfgTest, UnreachableBlockDetected) {
  const Program prog = Prog({
      MovImm(kR0, 0),
      Exit(),
      MovImm(kR0, 1),  // dead: nothing jumps here
      Exit(),
  });
  // Force the dead code into its own block via a jump target from nowhere:
  // insn 2 is a leader only because insn 1 terminates.
  const Cfg cfg = BuildCfg(prog);
  const std::vector<bool> reached = cfg.ReachableBlocks();
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_TRUE(reached[cfg.BlockAt(0)]);
  EXPECT_FALSE(reached[cfg.BlockAt(2)]);
}

TEST(CfgTest, BackEdgeForLoop) {
  //  0: r0 = 10
  //  1: r0 -= 1            <- loop head (jump target)
  //  2: if r0 != 0 goto -2
  //  3: exit
  const Program prog = Prog({
      MovImm(kR0, 10),
      AluImm(kAluSub, kR0, 1),
      JmpImm(kJmpJne, kR0, 0, -2),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const int head = cfg.BlockAt(1);
  const int branch = cfg.BlockAt(2);
  EXPECT_EQ(head, branch);  // head..branch form one block
  // The block loops to itself and exits.
  ASSERT_EQ(cfg.blocks[head].succs.size(), 2u);
  EXPECT_NE(std::find(cfg.blocks[head].succs.begin(), cfg.blocks[head].succs.end(),
                      head),
            cfg.blocks[head].succs.end());
}

TEST(CfgTest, ToStringMentionsEveryBlock) {
  const Program prog = Prog({
      MovImm(kR0, 1),
      JmpImm(kJmpJeq, kR0, 0, 1),
      MovImm(kR0, 2),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const std::string dump = cfg.ToString(prog);
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    EXPECT_NE(dump.find("bb" + std::to_string(b)), std::string::npos) << dump;
  }
}

}  // namespace
}  // namespace bvf
