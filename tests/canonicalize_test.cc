// Canonicalizer tests (DESIGN.md §13): the invariant the canonical
// verdict-cache level rests on is that every member of a transform orbit maps
// to one spelling. Property tests check Canonicalize(T(p)) == Canonicalize(p)
// for every metamorphic transform kind over the golden 32-seed corpus,
// idempotence, the per-pass guards, and — end to end — that a rejection
// served from the canonical cache level equals a fresh PROG_LOAD.

#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/canonicalize.h"
#include "src/core/checkpoint.h"
#include "src/core/fuzzer.h"
#include "src/core/metamorph/transform.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"
#include "src/kernel/rng.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/verdict_cache.h"

namespace bvf {
namespace {

constexpr uint64_t kNumSeeds = 32;  // mirrors tests/data/golden/

bpf::Program Golden(uint64_t seed) {
  StructuredGenerator generator(bpf::KernelVersion::kBpfNext);
  bpf::Rng rng(seed);
  return generator.Generate(rng).prog;
}

std::string Pretty(const bpf::Program& prog) {
  return prog.Disassemble();
}

TEST(CanonicalizeTest, IdempotentOnGoldenCorpus) {
  const CanonicalizeOptions options;
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const bpf::Program prog = Golden(seed);
    const bpf::Program once = Canonicalize(prog, options);
    const bpf::Program twice = Canonicalize(once, options);
    EXPECT_EQ(ProgramFnv(once), ProgramFnv(twice))
        << "seed " << seed << "\nonce:\n"
        << Pretty(once) << "twice:\n"
        << Pretty(twice);
    // A canonical program is still structurally loadable.
    EXPECT_EQ(bpf::CheckEncoding(once, nullptr), 0) << "seed " << seed;
  }
}

// The core orbit property: applying any semantics-preserving transform first
// must not change the canonical form. Each (seed, kind) pair draws its own
// transform RNG so the corpus exercises every insertion flavor.
TEST(CanonicalizeTest, TransformsPreserveCanonicalForm) {
  const CanonicalizeOptions options;
  size_t applied = 0;
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const bpf::Program prog = Golden(seed);
    if (bpf::CheckEncoding(prog, nullptr) != 0) {
      continue;  // ill-formed programs canonicalize to themselves; no orbit
    }
    const uint64_t canon = ProgramFnv(Canonicalize(prog, options));
    for (int t = 0; t < kNumTransformKinds; ++t) {
      const TransformKind kind = static_cast<TransformKind>(t);
      for (uint64_t draw = 0; draw < 4; ++draw) {
        bpf::Program variant = prog;
        bpf::Rng rng(seed * 977 + static_cast<uint64_t>(t) * 31 + draw);
        if (!ApplyTransform(kind, variant, rng)) {
          continue;
        }
        const bpf::Program canon_variant = Canonicalize(variant, options);
        EXPECT_EQ(ProgramFnv(canon_variant), canon)
            << "seed " << seed << " transform " << TransformKindName(kind)
            << " draw " << draw << "\nvariant:\n"
            << Pretty(variant) << "canonical variant:\n"
            << Pretty(canon_variant) << "canonical base:\n"
            << Pretty(Canonicalize(prog, options));
        ++applied;
      }
    }
  }
  // The corpus must actually exercise the orbits, not vacuously pass.
  EXPECT_GE(applied, 200u);
}

// Stacked transforms stay in the orbit too: the canonicalizer runs its strip
// passes to fixpoint, so any composition must collapse to the same form.
TEST(CanonicalizeTest, StackedTransformsCollapse) {
  const CanonicalizeOptions options;
  size_t stacked = 0;
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const bpf::Program prog = Golden(seed);
    if (bpf::CheckEncoding(prog, nullptr) != 0) {
      continue;
    }
    const uint64_t canon = ProgramFnv(Canonicalize(prog, options));
    bpf::Program variant = prog;
    bpf::Rng rng(seed * 7919);
    int layers = 0;
    for (int t = 0; t < kNumTransformKinds; ++t) {
      if (ApplyTransform(static_cast<TransformKind>(t), variant, rng)) {
        ++layers;
      }
    }
    if (layers < 2) {
      continue;
    }
    EXPECT_EQ(ProgramFnv(Canonicalize(variant, options)), canon)
        << "seed " << seed << " layers " << layers << "\nvariant:\n"
        << Pretty(variant);
    ++stacked;
  }
  EXPECT_GE(stacked, 16u);
}

TEST(CanonicalizeTest, StripsJaZeroAndLeadingCtxMov) {
  bpf::Program prog;
  prog.type = bpf::ProgType::kSocketFilter;
  prog.insns = {
      bpf::MovReg(bpf::kR1, bpf::kR1),
      bpf::JmpA(0),
      bpf::MovImm(bpf::kR0, 3),
      bpf::Exit(),
  };
  bpf::Program want;
  want.type = prog.type;
  want.insns = {bpf::MovImm(bpf::kR0, 3), bpf::Exit()};
  const bpf::Program got = Canonicalize(prog, CanonicalizeOptions{});
  EXPECT_EQ(ProgramFnv(got), ProgramFnv(want)) << Pretty(got);
}

// A jump landing on index 0 makes the leading `r1 = r1` a loop-body
// instruction, not a pad: stripping it would change what the back edge
// re-executes. The guard must keep it.
TEST(CanonicalizeTest, KeepsJumpTargetedLeadingCtxMov) {
  bpf::Program prog;
  prog.type = bpf::ProgType::kSocketFilter;
  prog.insns = {
      bpf::MovReg(bpf::kR1, bpf::kR1),
      bpf::MovImm(bpf::kR0, 0),
      bpf::JmpImm(bpf::kJmpJeq, bpf::kR0, 7, -3),  // targets index 0
      bpf::Exit(),
  };
  ASSERT_EQ(bpf::CheckEncoding(prog, nullptr), 0);
  const bpf::Program got = Canonicalize(prog, CanonicalizeOptions{});
  EXPECT_EQ(ProgramFnv(got), ProgramFnv(prog)) << Pretty(got);
}

// `rPtr += 0` is pointer arithmetic the verifier tracks; without a
// const-write directly before it the ALU identity must survive.
TEST(CanonicalizeTest, KeepsAluIdentityWithoutConstWriteGuard) {
  bpf::Program prog;
  prog.type = bpf::ProgType::kSocketFilter;
  prog.insns = {
      bpf::MovReg(bpf::kR6, bpf::kR1),
      bpf::AluImm(bpf::kAluAdd, bpf::kR6, 0),
      bpf::MovImm(bpf::kR0, 0),
      bpf::Exit(),
  };
  ASSERT_EQ(bpf::CheckEncoding(prog, nullptr), 0);
  const bpf::Program got = Canonicalize(prog, CanonicalizeOptions{});
  EXPECT_EQ(got.insns.size(), prog.insns.size()) << Pretty(got);
}

TEST(CanonicalizeTest, FoldGateMatchesBug13Arming) {
  bpf::Program prog;
  prog.type = bpf::ProgType::kSocketFilter;
  prog.insns = {
      bpf::LdImm64Lo(bpf::kR0, 0, 5),
      bpf::LdImm64Hi(5),
      bpf::Exit(),
  };
  ASSERT_EQ(bpf::CheckEncoding(prog, nullptr), 0);

  CanonicalizeOptions fold_on;
  fold_on.fold_ld_imm64 = true;
  bpf::Program want;
  want.type = prog.type;
  want.insns = {bpf::MovImm(bpf::kR0, 5), bpf::Exit()};
  EXPECT_EQ(ProgramFnv(Canonicalize(prog, fold_on)), ProgramFnv(want));

  // With bug13 armed the two spellings are deliberately verdict-distinct, so
  // the fold must stay off and the ld_imm64 spelling must survive.
  CanonicalizeOptions fold_off;
  fold_off.fold_ld_imm64 = false;
  EXPECT_EQ(ProgramFnv(Canonicalize(prog, fold_off)), ProgramFnv(prog));

  // Values that are not the sign extension of their low word have no mov-imm
  // spelling; the fold must skip them even when enabled.
  bpf::Program wide;
  wide.type = prog.type;
  wide.insns = {
      bpf::LdImm64Lo(bpf::kR0, 0, 0x1234567800000005ull),
      bpf::LdImm64Hi(0x1234567800000005ull),
      bpf::Exit(),
  };
  EXPECT_EQ(ProgramFnv(Canonicalize(wide, fold_on)), ProgramFnv(wide));
}

TEST(CanonicalizeTest, IllFormedProgramsCanonicalizeToThemselves) {
  bpf::Program prog;
  prog.type = bpf::ProgType::kSocketFilter;
  prog.insns = {bpf::MovImm(bpf::kR0, 0)};  // no exit
  ASSERT_NE(bpf::CheckEncoding(prog, nullptr), 0);
  const bpf::Program got = Canonicalize(prog, CanonicalizeOptions{});
  EXPECT_EQ(ProgramFnv(got), ProgramFnv(prog));
}

// -- the canonical verdict-cache level, end to end --

// Two alpha-equivalent spellings of the same rejected program (the scratch
// register differs). The canonical level must serve the second from the
// first's verdict, and the served result must equal a fresh PROG_LOAD.
TEST(CanonicalCacheTest, ServedRejectionMatchesFreshLoad) {
  bpf::Program a;
  a.type = bpf::ProgType::kSocketFilter;
  a.insns = {bpf::MovReg(bpf::kR0, bpf::kR6), bpf::Exit()};  // r6 uninitialized
  bpf::Program b = a;
  b.insns[0].src = bpf::kR7;
  ASSERT_NE(ProgramFnv(a), ProgramFnv(b));
  const CanonicalizeOptions options;
  ASSERT_EQ(ProgramFnv(Canonicalize(a, options)), ProgramFnv(Canonicalize(b, options)));

  // Fresh, uncached loads: the ground truth both spellings must match.
  int fresh_a = 0;
  int fresh_b = 0;
  {
    bpf::Kernel kernel(bpf::KernelVersion::kBpfNext, bpf::BugConfig::None());
    bpf::Bpf bpf(kernel);
    fresh_a = bpf.ProgLoad(a);
    fresh_b = bpf.ProgLoad(b);
  }
  ASSERT_LT(fresh_a, 0);
  ASSERT_EQ(fresh_a, fresh_b);

  bpf::Kernel kernel(bpf::KernelVersion::kBpfNext, bpf::BugConfig::None());
  bpf::Bpf bpf(kernel);
  bpf::VerdictCache cache;
  bpf::VerdictCacheShard shard(cache, /*immediate=*/true);
  bpf.set_verdict_cache(&shard, nullptr);
  bpf.set_canonicalizer(
      [options](const bpf::Program& prog) { return Canonicalize(prog, options); });

  // First spelling: raw miss, canonical miss, fresh verify, rejection cached
  // at both levels.
  EXPECT_EQ(bpf.ProgLoad(a), fresh_a);
  EXPECT_EQ(shard.TakeCanonicalHits(), 0u);
  EXPECT_EQ(shard.TakeCanonicalMisses(), 1u);
  shard.TakeHits();
  shard.TakeMisses();

  // Second spelling: raw miss, canonical hit — and the exact fresh verdict.
  EXPECT_EQ(bpf.ProgLoad(b), fresh_b);
  EXPECT_EQ(shard.TakeCanonicalHits(), 1u);
  EXPECT_EQ(shard.TakeCanonicalMisses(), 0u);
  EXPECT_EQ(shard.TakeMisses(), 1u);

  // The canonical hit promoted the verdict to the raw level: reloading the
  // second spelling is now a raw hit and never consults the canonical level.
  EXPECT_EQ(bpf.ProgLoad(b), fresh_b);
  EXPECT_EQ(shard.TakeHits(), 1u);
  EXPECT_EQ(shard.TakeCanonicalHits(), 0u);
  EXPECT_EQ(shard.TakeCanonicalMisses(), 0u);
}

// Acceptances must never be served canonically: the accepted path touches the
// substrate (kmemdup, instrumentation bookkeeping), so a served acceptance
// would skip side effects the digest sees.
TEST(CanonicalCacheTest, AcceptancesAreNotServedCanonically) {
  bpf::Program a;
  a.type = bpf::ProgType::kSocketFilter;
  a.insns = {
      bpf::MovImm(bpf::kR6, 1),
      bpf::MovReg(bpf::kR0, bpf::kR6),
      bpf::Exit(),
  };
  bpf::Program b = a;
  b.insns[0].dst = bpf::kR7;
  b.insns[1].src = bpf::kR7;
  const CanonicalizeOptions options;
  ASSERT_EQ(ProgramFnv(Canonicalize(a, options)), ProgramFnv(Canonicalize(b, options)));

  bpf::Kernel kernel(bpf::KernelVersion::kBpfNext, bpf::BugConfig::None());
  bpf::Bpf bpf(kernel);
  bpf::VerdictCache cache;
  bpf::VerdictCacheShard shard(cache, /*immediate=*/true);
  bpf.set_verdict_cache(&shard, nullptr);
  bpf.set_canonicalizer(
      [options](const bpf::Program& prog) { return Canonicalize(prog, options); });

  EXPECT_GT(bpf.ProgLoad(a), 0);
  EXPECT_GT(bpf.ProgLoad(b), 0);
  // Both loads missed at both levels: the acceptance was never inserted at —
  // and so never served from — the canonical level.
  EXPECT_EQ(shard.TakeCanonicalHits(), 0u);
  EXPECT_EQ(shard.TakeCanonicalMisses(), 2u);
  EXPECT_EQ(cache.canonical_size(), 0u);
}

// The campaign-level gate: flipping the canonical cache on must not move the
// result digest (same discipline the verdict cache and decode cache follow).
TEST(CanonicalCacheTest, CampaignDigestInvariant) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = 200;
  options.seed = 5;
  options.verdict_cache = true;
  options.canonical_cache = false;

  StructuredGenerator gen_off(options.version);
  Fuzzer off(gen_off, options);
  const CampaignStats stats_off = off.Run();

  options.canonical_cache = true;
  StructuredGenerator gen_on(options.version);
  Fuzzer on(gen_on, options);
  const CampaignStats stats_on = on.Run();

  EXPECT_EQ(StatsDigest(stats_off), StatsDigest(stats_on));
  EXPECT_EQ(stats_off.accepted, stats_on.accepted);
  EXPECT_EQ(stats_off.final_coverage, stats_on.final_coverage);
  // The canonical counters partition the raw misses.
  EXPECT_EQ(stats_on.canonical_cache_hits + stats_on.canonical_cache_misses,
            stats_on.verdict_cache_misses);
}

}  // namespace
}  // namespace bvf
