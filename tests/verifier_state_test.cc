// Verifier state machinery: subsumption/pruning, path exploration limits,
// per-version behaviour differences, fixup/rewrite outputs, and the verbose
// log format.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/verifier/verifier_state.h"

namespace bpf {
namespace {

// ---- StateSubsumes / StateEqual ----

TEST(VerifierStateTest, EntryStateShape) {
  const VerifierState state = VerifierState::Entry();
  EXPECT_EQ(state.frame_depth(), 1);
  EXPECT_EQ(state.regs()[kR1].type, RegType::kPtrToCtx);
  EXPECT_EQ(state.regs()[kR10].type, RegType::kPtrToStack);
  EXPECT_EQ(state.regs()[kR0].type, RegType::kNotInit);
  EXPECT_TRUE(state.acquired_refs.empty());
}

TEST(VerifierStateTest, EqualAndSubsumesReflexive) {
  const VerifierState state = VerifierState::Entry();
  EXPECT_TRUE(StateEqual(state, state));
  EXPECT_TRUE(StateSubsumes(state, state));
}

TEST(VerifierStateTest, WiderScalarSubsumesNarrower) {
  VerifierState wide = VerifierState::Entry();
  VerifierState narrow = VerifierState::Entry();
  wide.regs()[kR3] = RegState::Unknown();
  RegState bounded = RegState::Unknown();
  bounded.umin = 0;
  bounded.umax = 31;
  bounded.Sync();
  narrow.regs()[kR3] = bounded;
  EXPECT_TRUE(StateSubsumes(wide, narrow));
  EXPECT_FALSE(StateSubsumes(narrow, wide));
  EXPECT_FALSE(StateEqual(wide, narrow));
}

TEST(VerifierStateTest, PointerMismatchBlocksSubsumption) {
  VerifierState a = VerifierState::Entry();
  VerifierState b = VerifierState::Entry();
  a.regs()[kR2] = RegState::Pointer(RegType::kPtrToMapValue, 0);
  a.regs()[kR2].map_id = 1;
  b.regs()[kR2] = RegState::Pointer(RegType::kPtrToMapValue, 8);
  b.regs()[kR2].map_id = 1;
  EXPECT_FALSE(StateSubsumes(a, b));  // different fixed offsets
  b.regs()[kR2].off = 0;
  EXPECT_TRUE(StateSubsumes(a, b));
  b.regs()[kR2].map_id = 2;
  EXPECT_FALSE(StateSubsumes(a, b));  // different maps
}

TEST(VerifierStateTest, StackSlotSubsumption) {
  VerifierState old_state = VerifierState::Entry();
  VerifierState cur = VerifierState::Entry();
  // Old path never touched the slot: anything is fine.
  cur.cur().SetSlot(0, SlotType::kMisc);
  EXPECT_TRUE(StateSubsumes(old_state, cur));
  // Old path relied on a spilled pointer; current holds misc: unsafe.
  old_state.cur().SetSpill(0, RegState::Pointer(RegType::kPtrToStack));
  EXPECT_FALSE(StateSubsumes(old_state, cur));
  // Misc old-slot accepts a scalar spill.
  old_state.cur().SetSlotKeepPayload(0, SlotType::kMisc);
  cur.cur().SetSpill(0, RegState::Known(3));
  EXPECT_TRUE(StateSubsumes(old_state, cur));
}

TEST(VerifierStateTest, StaleSpillPayloadStaysObservableInEquality) {
  // The helper-argument store downgrades a spill slot to kMisc without
  // clearing its payload, and that stale payload has always been part of
  // state equality (it can delay loop-detection convergence). The sparse
  // spill representation must preserve that, not canonicalize it away.
  VerifierState a = VerifierState::Entry();
  VerifierState b = VerifierState::Entry();
  a.cur().SetSpill(0, RegState::Known(7));
  a.cur().SetSlotKeepPayload(0, SlotType::kMisc);
  b.cur().SetSlot(0, SlotType::kMisc);
  EXPECT_EQ(a.cur().slot_type(0), b.cur().slot_type(0));
  EXPECT_FALSE(StateEqual(a, b));  // stale payload still observable
  a.cur().SetSlot(0, SlotType::kMisc);  // explicit clear restores equality
  EXPECT_TRUE(StateEqual(a, b));
  // And the spill payload round-trips through the sparse store.
  b.cur().SetSpill(3, RegState::Known(9));
  EXPECT_EQ(b.cur().slot_type(3), SlotType::kSpill);
  EXPECT_EQ(b.cur().SpillData(3).var_off.value, 9u);
  EXPECT_EQ(b.cur().SpillData(2).type, RegType::kNotInit);
}

TEST(VerifierStateTest, AcquiredRefsBlockSubsumption) {
  VerifierState a = VerifierState::Entry();
  VerifierState b = VerifierState::Entry();
  a.AddRef(7);
  EXPECT_FALSE(StateSubsumes(a, b));
  EXPECT_FALSE(StateEqual(a, b));
  b.AddRef(7);
  EXPECT_TRUE(StateSubsumes(a, b));
  EXPECT_TRUE(b.ReleaseRef(7));
  EXPECT_FALSE(b.ReleaseRef(7));
}

TEST(VerifierStateTest, PacketRangeSubsumption) {
  VerifierState a = VerifierState::Entry();
  VerifierState b = VerifierState::Entry();
  a.regs()[kR2] = RegState::Pointer(RegType::kPtrToPacket);
  a.regs()[kR2].id = 1;
  a.regs()[kR2].pkt_range = 8;
  b.regs()[kR2] = a.regs()[kR2];
  b.regs()[kR2].pkt_range = 16;
  // Old proved safe with range 8; new has at least that much: prunable.
  EXPECT_TRUE(StateSubsumes(a, b));
  EXPECT_FALSE(StateSubsumes(b, a));
}

// ---- Pruning and exploration limits through the public API ----

class StateExplorationTest : public ::testing::Test {
 protected:
  StateExplorationTest()
      : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  Kernel kernel_;
  Bpf bpf_;
};

TEST_F(StateExplorationTest, ConvergingBranchesGetPruned) {
  // A diamond whose sides produce identical states: the join is verified once.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.JmpIf(kJmpJeq, kR6, 0, 2);
  b.Mov(kR7, 1);
  b.Jmp(1);
  b.Mov(kR7, 1);  // same value on both sides
  b.Mov(kR0, kR7);
  b.Ret();
  VerifierResult result;
  ASSERT_GT(bpf_.ProgLoad(b.Build(), &result), 0) << result.log;
  EXPECT_GE(result.states_pruned, 1u);
}

TEST_F(StateExplorationTest, BranchHeavyProgramStaysBounded) {
  // 24 independent unknown branches would be 2^24 paths without pruning.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  for (int i = 0; i < 24; ++i) {
    b.JmpIf(kJmpJgt, kR6, i, 0);  // both branches converge immediately
  }
  b.RetImm(0);
  VerifierResult result;
  ASSERT_GT(bpf_.ProgLoad(b.Build(), &result), 0) << result.log;
  EXPECT_LT(result.insns_processed, 4000u);
}

TEST_F(StateExplorationTest, UnknownCounterLoopRejected) {
  // Loop bound from the context: unknown scalar, state repeats -> rejected.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.Alu(kAluSub, kR6, 1);
  b.JmpIf(kJmpJne, kR6, 0, -2);
  b.RetImm(0);
  VerifierResult result;
  const int err = bpf_.ProgLoad(b.Build(), &result);
  EXPECT_TRUE(err == -EINVAL || err == -E2BIG) << result.log;
}

TEST_F(StateExplorationTest, NestedBoundedLoopsAccepted) {
  ProgramBuilder b;
  b.Mov(kR0, 0);
  b.Mov(kR6, 3);
  b.Mov(kR7, 4);           // inner reset
  b.Alu(kAluAdd, kR0, 1);
  b.Alu(kAluSub, kR7, 1);
  b.JmpIf(kJmpJne, kR7, 0, -3);
  b.Alu(kAluSub, kR6, 1);
  b.JmpIf(kJmpJne, kR6, 0, -6);
  b.Ret();
  VerifierResult result;
  const int fd = bpf_.ProgLoad(b.Build(), &result);
  ASSERT_GT(fd, 0) << result.log;
  EXPECT_EQ(bpf_.ProgTestRun(fd).r0, 12u);
}

TEST_F(StateExplorationTest, JsetRefinementOnFallThrough) {
  const int map_fd = [&] {
    MapDef def;
    def.type = MapType::kArray;
    def.key_size = 4;
    def.value_size = 16;
    def.max_entries = 1;
    return bpf_.MapCreate(def);
  }();
  // Fall-through of JSET on bit mask ~0x7: the low bits are the only ones
  // possibly set -> usable as a bounded map offset.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 4);
  b.JmpIf(kJmpJset, kR6, ~7, 3);  // fall-through: r6 within [0,7]
  b.Add(kR0, kR6);
  b.Load(kSizeDw, kR0, kR0, 0);   // 7 + 8 <= 16
  b.Jmp(0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(bpf_.ProgLoad(b.Build(), &result), 0) << result.log;
}

// ---- Per-version verifier differences ----

TEST(VersionBehaviourTest, NullnessPropagationOnlyOnBpfNext) {
  // The Listing 2 shape must be rejected on v6.1 (feature absent) even with
  // bug #1 "enabled" — the buggy code simply does not exist there.
  for (const KernelVersion version : {KernelVersion::kV6_1, KernelVersion::kBpfNext}) {
    BugConfig bugs;
    bugs.bug1_nullness_propagation = true;
    Kernel kernel(version, bugs);
    Bpf bpf(kernel);
    MapDef def;
    def.type = MapType::kHash;
    def.key_size = 8;
    def.value_size = 16;
    def.max_entries = 8;
    const int map_fd = bpf.MapCreate(def);

    ProgramBuilder b(ProgType::kKprobe);
    b.LdBtfId(kR6, kBtfMmStruct);
    b.StoreImm(kSizeDw, kR10, -8, 7777);
    b.LdMapFd(kR1, map_fd);
    b.Mov(kR2, kR10);
    b.Add(kR2, -8);
    b.Call(kHelperMapLookupElem);
    b.JmpIfReg(kJmpJne, kR0, kR6, 1);
    b.Load(kSizeDw, kR8, kR0, 0);
    b.RetImm(0);
    const int fd = bpf.ProgLoad(b.Build());
    if (version == KernelVersion::kBpfNext) {
      EXPECT_GT(fd, 0);
    } else {
      EXPECT_EQ(fd, -EACCES);
    }
  }
}

TEST(VersionBehaviourTest, CoverageSurfaceGrowsWithVersion) {
  // Newer versions expose more helpers => more reachable verifier code.
  size_t counts[3] = {};
  int i = 0;
  for (const KernelVersion version :
       {KernelVersion::kV5_15, KernelVersion::kV6_1, KernelVersion::kBpfNext}) {
    counts[i++] = AvailableHelpers(version, ProgType::kKprobe).size() +
                  AvailableKfuncs(version).size();
  }
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[1], counts[2]);
}

// ---- Fixup outputs ----

TEST_F(StateExplorationTest, FixupResolvesMapFds) {
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 1;
  const int map_fd = bpf_.MapCreate(def);
  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.RetImm(0);
  VerifierResult result;
  const int fd = bpf_.ProgLoad(b.Build(), &result);
  ASSERT_GT(fd, 0);
  const LoadedProgram* prog = bpf_.FindProg(fd);
  // The pseudo src is cleared and the imm pair now holds the object address.
  EXPECT_EQ(prog->prog.insns[0].src, 0);
  const uint64_t addr =
      (static_cast<uint64_t>(static_cast<uint32_t>(prog->prog.insns[1].imm)) << 32) |
      static_cast<uint32_t>(prog->prog.insns[0].imm);
  EXPECT_EQ(addr, kernel_.maps().Find(map_fd)->obj_addr());
}

TEST_F(StateExplorationTest, FixupResolvesBtfIds) {
  ProgramBuilder b(ProgType::kKprobe);
  b.LdBtfId(kR6, kBtfTaskStruct);
  b.Load(kSizeW, kR0, kR6, 16);
  b.Ret();
  VerifierResult result;
  const int fd = bpf_.ProgLoad(b.Build(), &result);
  ASSERT_GT(fd, 0) << result.log;
  const ExecResult exec = bpf_.ProgTestRun(fd);
  EXPECT_EQ(exec.r0, 2u);  // the simulated current task's pid
}

TEST_F(StateExplorationTest, VerboseLogDumpsStates) {
  VerifierEnv env;
  env.maps = &kernel_.maps();
  env.btf = &kernel_.btf();
  env.version = kernel_.version();
  env.verbose_log = true;
  ProgramBuilder b;
  b.Mov(kR0, 3);
  b.Ret();
  const VerifierResult result = VerifyProgram(b.Build(), env);
  EXPECT_EQ(result.err, 0);
  EXPECT_NE(result.log.find("r0 = 3"), std::string::npos);
  EXPECT_NE(result.log.find("R0=3"), std::string::npos);
  EXPECT_NE(result.log.find("R10=fp"), std::string::npos);
}

}  // namespace
}  // namespace bpf
