// Memory-checking behaviour in depth: stack slot tracking (spill/fill/misc/
// zero), per-program-type context matrices, BTF chains, packet ranges, and
// bounds interplay with branches.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"

namespace bpf {
namespace {

class VerifierMemTest : public ::testing::Test {
 protected:
  VerifierMemTest() : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  int Load(const Program& prog, VerifierResult* result = nullptr) {
    VerifierResult local;
    const int fd = bpf_.ProgLoad(prog, result != nullptr ? result : &local);
    return fd;
  }

  int CreateArray(uint32_t value_size = 16) {
    MapDef def;
    def.type = MapType::kArray;
    def.key_size = 4;
    def.value_size = value_size;
    def.max_entries = 4;
    return bpf_.MapCreate(def);
  }

  Kernel kernel_;
  Bpf bpf_;
};

// ---- Stack ----

TEST_F(VerifierMemTest, SpillFillPreservesPointer) {
  const int map_fd = CreateArray();
  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Store(kSizeDw, kR10, kR1, -8);  // spill map pointer
  b.Load(kSizeDw, kR1, kR10, -8);   // fill it back
  b.StoreImm(kSizeW, kR10, -12, 0);
  b.Mov(kR2, kR10);
  b.Add(kR2, -12);
  b.Call(kHelperMapLookupElem);  // works only if the fill restored the type
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, PartialReadOfSpilledPointerRejected) {
  const int map_fd = CreateArray();
  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Store(kSizeDw, kR10, kR1, -8);
  b.Load(kSizeW, kR0, kR10, -8);  // 4-byte read of a pointer spill
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, PartialPointerSpillRejected) {
  const int map_fd = CreateArray();
  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Store(kSizeW, kR10, kR1, -8);  // 4-byte store of a pointer
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, MisalignedPointerSpillRejected) {
  const int map_fd = CreateArray();
  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Store(kSizeDw, kR10, kR1, -12);  // not 8-aligned
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, ScalarSpillKeepsBounds) {
  const int map_fd = CreateArray(64);
  ProgramBuilder b;
  b.Mov(kR1, 24);                  // const 24
  b.Store(kSizeDw, kR10, kR1, -8);
  b.StoreImm(kSizeW, kR10, -12, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -12);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 3);
  b.Load(kSizeDw, kR3, kR10, -8);  // fill: must still be known 24
  b.Add(kR0, kR3);
  b.Load(kSizeDw, kR0, kR0, 0);    // 24 + 8 <= 64: only legal if bounds kept
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, ZeroSlotReadsAsKnownZero) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 0);  // kZero slot
  b.StoreImm(kSizeW, kR10, -12, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -12);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 3);
  b.Load(kSizeDw, kR3, kR10, -8);  // known zero
  b.Add(kR0, kR3);                 // value + 0
  b.Load(kSizeDw, kR0, kR0, 8);    // 0 + 8 + 8 <= 16 only if r3 == 0 known
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, MiscSlotReadsAsUnknown) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -8, 0);  // 4-byte store -> misc, not zero
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.StoreImm(kSizeW, kR10, -12, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -12);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 3);
  b.Load(kSizeDw, kR3, kR10, -8);  // unknown scalar
  b.Add(kR0, kR3);
  b.Load(kSizeDw, kR0, kR0, 0);    // unbounded offset -> reject
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, StackAccessThroughCopiedPointer) {
  ProgramBuilder b;
  b.Mov(kR6, kR10);
  b.Add(kR6, -16);
  b.StoreImm(kSizeDw, kR6, 8, 7);   // writes fp-8
  b.Load(kSizeDw, kR0, kR10, -8);   // readable: same slot
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, StackOverflowViaCopiedPointer) {
  ProgramBuilder b;
  b.Mov(kR6, kR10);
  b.Add(kR6, -512);
  b.StoreImm(kSizeDw, kR6, -8, 7);  // fp-520: beyond the stack
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, AtomicOnUninitStackRejected) {
  ProgramBuilder b;
  b.Mov(kR1, 1);
  b.Raw(AtomicOp(kSizeDw, kR10, kR1, -8, kAtomicAdd));
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, AtomicSlotBecomesUnknownNotSpill) {
  const int map_fd = CreateArray(16);
  // After an atomic on a slot holding a known constant, a later fill must be
  // treated as unknown (the atomic-as-spill bug the property fuzzing caught).
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 4);
  b.Mov(kR1, 8);
  b.Raw(AtomicOp(kSizeDw, kR10, kR1, -8, kAtomicOr));
  b.StoreImm(kSizeW, kR10, -12, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -12);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 3);
  b.Load(kSizeDw, kR3, kR10, -8);
  b.Add(kR0, kR3);
  b.Load(kSizeDw, kR0, kR0, 0);  // offset unknown -> must reject
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

// ---- Context matrices ----

struct CtxCase {
  ProgType type;
  int off;
  uint8_t size;
  bool is_store;
  bool accepted;
};

class CtxMatrixTest : public ::testing::TestWithParam<CtxCase> {};

TEST_P(CtxMatrixTest, AccessOutcome) {
  const CtxCase& c = GetParam();
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  ProgramBuilder b(c.type);
  if (c.is_store) {
    b.Mov(kR2, 1);
    b.Store(c.size, kR1, kR2, static_cast<int16_t>(c.off));
  } else {
    b.Load(c.size, kR0, kR1, static_cast<int16_t>(c.off));
  }
  b.RetImm(0);
  VerifierResult result;
  const int fd = bpf.ProgLoad(b.Build(), &result);
  if (c.accepted) {
    EXPECT_GT(fd, 0) << result.log;
  } else {
    EXPECT_EQ(fd, -EACCES) << result.log;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, CtxMatrixTest,
    ::testing::Values(
        // __sk_buff
        CtxCase{ProgType::kSocketFilter, 0, kSizeW, false, true},    // len
        CtxCase{ProgType::kSocketFilter, 8, kSizeW, false, true},    // mark
        CtxCase{ProgType::kSocketFilter, 8, kSizeW, true, true},     // mark writable
        CtxCase{ProgType::kSocketFilter, 0, kSizeW, true, false},    // len read-only
        CtxCase{ProgType::kSocketFilter, 2, kSizeH, false, true},    // narrow load
        CtxCase{ProgType::kSocketFilter, 44, kSizeW, false, false},  // hole
        CtxCase{ProgType::kSocketFilter, 48, kSizeW, false, false},  // past end
        CtxCase{ProgType::kSocketFilter, 2, kSizeW, false, false},   // misaligned
        CtxCase{ProgType::kSocketFilter, 32, kSizeW, false, false},  // partial pkt field
        // xdp_md
        CtxCase{ProgType::kXdp, 24, kSizeW, false, true},   // ingress_ifindex
        CtxCase{ProgType::kXdp, 24, kSizeW, true, false},   // read-only
        CtxCase{ProgType::kXdp, 32, kSizeW, false, false},  // past end
        // pt_regs: everything readable, nothing writable
        CtxCase{ProgType::kKprobe, 0, kSizeDw, false, true},
        CtxCase{ProgType::kKprobe, 160, kSizeDw, false, true},
        CtxCase{ProgType::kKprobe, 160, kSizeDw, true, false},
        CtxCase{ProgType::kKprobe, 168, kSizeDw, false, false},
        // tracepoint args
        CtxCase{ProgType::kTracepoint, 56, kSizeDw, false, true},
        CtxCase{ProgType::kTracepoint, 64, kSizeDw, false, false}));

TEST_F(VerifierMemTest, CtxPointerWithConstOffset) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR6, kR1);
  b.Add(kR6, 8);
  b.Load(kSizeDw, kR0, kR6, 0);  // effective off 8: valid pt_regs field
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, CtxPointerVariableOffsetRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR2, kR1, 0);
  b.And(kR2, 7);
  b.Mov(kR6, kR1);
  b.Raw(AluReg(kAluAdd, kR6, kR2));
  b.Load(kSizeDw, kR0, kR6, 0);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

// ---- BTF ----

TEST_F(VerifierMemTest, BtfChainThroughPointerFields) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Load(kSizeDw, kR1, kR0, 112);  // task->parent (task_struct)
  b.Load(kSizeDw, kR2, kR1, 48);   // parent->files (file)
  b.Load(kSizeW, kR0, kR2, 0);     // file->f_mode
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, BtfWriteRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR1, 0);
  b.Store(kSizeW, kR0, kR1, 16);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, BtfNegativeOffsetRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Load(kSizeDw, kR0, kR0, -8);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, BtfScalarFieldLoadIsScalar) {
  // Loading a scalar field and dereferencing it must fail.
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Load(kSizeDw, kR1, kR0, 64);  // start_time: scalar
  b.Load(kSizeDw, kR0, kR1, 0);   // deref of scalar
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, BtfRuntimeNullLoadReadsZero) {
  // task->mm is NULL for kernel threads; PTR_TO_BTF_ID loads are exception-
  // handled, so the nested load reads 0 instead of crashing.
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Load(kSizeDw, kR1, kR0, 40);   // task->mm == NULL at runtime
  b.Load(kSizeDw, kR0, kR1, 0);    // exception-handled: reads 0
  b.Ret();
  VerifierResult result;
  const int fd = Load(b.Build(), &result);
  ASSERT_GT(fd, 0) << result.log;
  const ExecResult exec = bpf_.ProgTestRun(fd);
  EXPECT_EQ(exec.err, 0);
  EXPECT_EQ(exec.r0, 0u);
  EXPECT_TRUE(kernel_.reports().empty());
}

// ---- Packet ranges ----

TEST_F(VerifierMemTest, PacketRangeIsPerComparedOffset) {
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 0);
  b.Load(kSizeDw, kR3, kR1, 8);
  b.Mov(kR4, kR2);
  b.Add(kR4, 4);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 1);  // verified: 4 bytes
  b.Load(kSizeDw, kR0, kR2, 0);      // needs 8 -> reject
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, PacketRangeAppliesToAllCopies) {
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 0);
  b.Mov(kR5, kR2);                   // copy shares the packet id
  b.Load(kSizeDw, kR3, kR1, 8);
  b.Mov(kR4, kR2);
  b.Add(kR4, 8);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 1);
  b.Load(kSizeDw, kR0, kR5, 0);      // the copy gained the range too
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, PacketWriteOnSkbRejected) {
  ProgramBuilder b(ProgType::kSocketFilter);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 32);
  b.Load(kSizeDw, kR3, kR1, 40);
  b.Mov(kR4, kR2);
  b.Add(kR4, 1);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 2);
  b.Mov(kR5, 1);
  b.Store(kSizeB, kR2, kR5, 0);  // skb packet data is read-only
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, PacketWriteOnXdpAccepted) {
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 0);
  b.Load(kSizeDw, kR3, kR1, 8);
  b.Mov(kR4, kR2);
  b.Add(kR4, 1);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 2);
  b.Mov(kR5, 1);
  b.Store(kSizeB, kR2, kR5, 0);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, PacketEndDerefRejected) {
  ProgramBuilder b(ProgType::kXdp);
  b.Load(kSizeDw, kR3, kR1, 8);
  b.Load(kSizeB, kR0, kR3, 0);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

// ---- Map value bounds refinement through branches ----

TEST_F(VerifierMemTest, BranchRefinedOffsetAccepted) {
  const int map_fd = CreateArray(64);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);     // unknown scalar from ctx
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 4);
  b.JmpIf(kJmpJgt, kR6, 56, 3);     // fall-through: r6 <= 56
  b.Add(kR0, kR6);
  b.Load(kSizeB, kR0, kR0, 0);      // 56 + 1 <= 64
  b.Jmp(0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierMemTest, BranchRefinementRespectsDirection) {
  const int map_fd = CreateArray(64);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 4);
  b.JmpIf(kJmpJlt, kR6, 56, 3);     // fall-through: r6 >= 56 -- wrong side!
  b.Add(kR0, kR6);
  b.Load(kSizeB, kR0, kR0, 0);
  b.Jmp(0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierMemTest, SignedRefinementCatchesNegative) {
  const int map_fd = CreateArray(64);
  // Unsigned-only bound: r6 <= 56 via JLE is fine, but a signed-only bound
  // (JSLE) leaves the negative range open for unsigned addition.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 4);
  b.JmpIf(kJmpJsgt, kR6, 56, 3);    // fall-through: r6 s<= 56 (maybe negative)
  b.Add(kR0, kR6);
  b.Load(kSizeB, kR0, kR0, 0);
  b.Jmp(0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

}  // namespace
}  // namespace bpf
