// Core accept/reject behaviour of the verifier, including the Table 1
// workflow example from the paper.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/verifier/verifier.h"

namespace bpf {
namespace {

class VerifierBasicTest : public ::testing::Test {
 protected:
  VerifierBasicTest()
      : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  int Load(const Program& prog, VerifierResult* result = nullptr) {
    return bpf_.ProgLoad(prog, result);
  }

  int CreateArray(uint32_t value_size = 16, uint32_t entries = 4) {
    MapDef def;
    def.type = MapType::kArray;
    def.key_size = 4;
    def.value_size = value_size;
    def.max_entries = entries;
    return bpf_.MapCreate(def);
  }

  int CreateHash(uint32_t key_size = 4, uint32_t value_size = 16) {
    MapDef def;
    def.type = MapType::kHash;
    def.key_size = key_size;
    def.value_size = value_size;
    def.max_entries = 8;
    return bpf_.MapCreate(def);
  }

  Kernel kernel_;
  Bpf bpf_;
};

TEST_F(VerifierBasicTest, MinimalProgramLoads) {
  ProgramBuilder b;
  b.RetImm(0);
  EXPECT_GT(Load(b.Build()), 0);
}

TEST_F(VerifierBasicTest, EmptyProgramRejected) {
  Program prog;
  EXPECT_EQ(Load(prog), -EINVAL);
}

TEST_F(VerifierBasicTest, MissingExitRejected) {
  ProgramBuilder b;
  b.Mov(kR0, 0);
  EXPECT_EQ(Load(b.Build()), -EINVAL);
}

TEST_F(VerifierBasicTest, UninitializedRegisterRejected) {
  ProgramBuilder b;
  b.Mov(kR0, kR5);  // R5 never written
  b.Ret();
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -EACCES);
  EXPECT_NE(result.log.find("uninitialized"), std::string::npos);
}

TEST_F(VerifierBasicTest, PointerReturnRejected) {
  ProgramBuilder b;
  b.Mov(kR0, kR10);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

// Table 1 of the paper: store key on the stack, call map_lookup_elem.
TEST_F(VerifierBasicTest, Table1WorkflowAccepted) {
  const int map_fd = CreateHash(/*key_size=*/8);
  ASSERT_GT(map_fd, 0);

  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Call(kHelperMapLookupElem);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, MapLookupWithUninitKeyRejected) {
  const int map_fd = CreateHash(/*key_size=*/8);
  ASSERT_GT(map_fd, 0);

  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  // Key bytes never initialized.
  b.Call(kHelperMapLookupElem);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, NullCheckRequiredBeforeDeref) {
  const int map_fd = CreateArray();
  ASSERT_GT(map_fd, 0);

  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.Call(kHelperMapLookupElem);
  b.Load(kSizeDw, kR0, kR0, 0);  // no null check
  b.Ret();
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -EACCES) << result.log;
}

TEST_F(VerifierBasicTest, NullCheckedDerefAccepted) {
  const int map_fd = CreateArray();
  ASSERT_GT(map_fd, 0);

  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 1);
  b.Load(kSizeDw, kR0, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, MapValueOutOfBoundsRejected) {
  const int map_fd = CreateArray(/*value_size=*/16);
  ASSERT_GT(map_fd, 0);

  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 1);
  b.Load(kSizeDw, kR0, kR0, 16);  // [16, 24) is past the 16-byte value
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, StackOutOfBoundsRejected) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -520, 1);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, StackReadOfUninitRejected) {
  ProgramBuilder b;
  b.Load(kSizeDw, kR0, kR10, -8);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, FramePointerWriteRejected) {
  ProgramBuilder b;
  b.Mov(kR10, 4);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, UnreachableInsnRejected) {
  ProgramBuilder b;
  b.Mov(kR0, 0);
  b.Jmp(1);
  b.Mov(kR1, 1);  // skipped by the jump, reachable... then:
  b.Ret();
  // Make one truly unreachable: exit then trailing insns.
  ProgramBuilder b2;
  b2.RetImm(0);
  b2.Mov(kR1, 1);
  b2.Ret();
  EXPECT_EQ(Load(b2.Build()), -EINVAL);
}

TEST_F(VerifierBasicTest, BoundedLoopAccepted) {
  ProgramBuilder b;
  b.Mov(kR6, 4);
  b.Mov(kR0, 0);        // loop body start
  b.Alu(kAluSub, kR6, 1);
  b.JmpIf(kJmpJne, kR6, 0, -3);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, InfiniteLoopRejected) {
  ProgramBuilder b;
  b.Mov(kR0, 0);
  b.Jmp(-2);  // jumps back to itself forever
  b.Ret();
  const int err = Load(b.Build());
  EXPECT_TRUE(err == -EINVAL || err == -E2BIG) << err;
}

TEST_F(VerifierBasicTest, DivisionByZeroImmediateRejected) {
  ProgramBuilder b;
  b.Mov(kR0, 10);
  b.Alu(kAluDiv, kR0, 0);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EINVAL);
}

TEST_F(VerifierBasicTest, UnknownHelperRejected) {
  ProgramBuilder b;
  b.Call(9999);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EINVAL);
}

TEST_F(VerifierBasicTest, VariableMapOffsetWithMaskAccepted) {
  const int map_fd = CreateArray(/*value_size=*/64);
  ASSERT_GT(map_fd, 0);

  // Value pointer in r6, masked index in r7.
  ProgramBuilder c;
  c.LdMapFd(kR1, map_fd);
  c.Mov(kR2, kR10);
  c.Add(kR2, -4);
  c.StoreImm(kSizeW, kR10, -4, 0);
  c.Call(kHelperMapLookupElem);
  c.JmpIf(kJmpJeq, kR0, 0, 5);
  c.Mov(kR6, kR0);
  c.Load(kSizeW, kR7, kR6, 0);
  c.And(kR7, 31);
  c.Add(kR6, kR7);       // value + [0,31]
  c.Load(kSizeDw, kR0, kR6, 0);  // max 31+8 <= 64
  c.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(c.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, VariableMapOffsetUnboundedRejected) {
  const int map_fd = CreateArray(/*value_size=*/64);
  ASSERT_GT(map_fd, 0);

  ProgramBuilder c;
  c.LdMapFd(kR1, map_fd);
  c.Mov(kR2, kR10);
  c.Add(kR2, -4);
  c.StoreImm(kSizeW, kR10, -4, 0);
  c.Call(kHelperMapLookupElem);
  c.JmpIf(kJmpJeq, kR0, 0, 4);
  c.Mov(kR6, kR0);
  c.Load(kSizeW, kR7, kR6, 0);  // unbounded scalar
  c.Add(kR6, kR7);
  c.Load(kSizeDw, kR0, kR6, 0);
  c.RetImm(0);
  EXPECT_EQ(Load(c.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, CtxAccessWithinBounds) {
  ProgramBuilder b(ProgType::kSocketFilter);
  b.Load(kSizeW, kR0, kR1, 0);  // skb->len
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, CtxAccessOutOfBoundsRejected) {
  ProgramBuilder b(ProgType::kSocketFilter);
  b.Load(kSizeW, kR0, kR1, 4096);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, CtxReadOnlyFieldWriteRejected) {
  ProgramBuilder b(ProgType::kSocketFilter);
  b.Mov(kR2, 1);
  b.Store(kSizeW, kR1, kR2, 0);  // skb->len is read-only
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, CtxWritableFieldWriteAccepted) {
  ProgramBuilder b(ProgType::kSocketFilter);
  b.Mov(kR2, 1);
  b.Store(kSizeW, kR1, kR2, 8);  // skb->mark is writable
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, PacketAccessRequiresBoundsCheck) {
  ProgramBuilder b(ProgType::kXdp);
  b.Load(kSizeDw, kR2, kR1, 0);  // data
  b.Load(kSizeB, kR0, kR2, 0);   // no data_end comparison
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierBasicTest, PacketAccessAfterBoundsCheckAccepted) {
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 0);  // data
  b.Load(kSizeDw, kR3, kR1, 8);  // data_end
  b.Mov(kR4, kR2);
  b.Add(kR4, 8);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 1);  // if data+8 > data_end skip the access
  b.Load(kSizeDw, kR0, kR2, 0);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, ReferenceLeakRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR1, kR0);
  b.Kfunc(kKfuncTaskAcquire);
  // No release before exit.
  b.RetImm(0);
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -EINVAL) << result.log;
  EXPECT_NE(result.log.find("reference leak"), std::string::npos);
}

TEST_F(VerifierBasicTest, AcquireReleasePairAccepted) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR1, kR0);
  b.Kfunc(kKfuncTaskAcquire);
  b.Mov(kR1, kR0);
  b.Kfunc(kKfuncTaskRelease);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierBasicTest, TracingHelperRejectedOnSocketFilter) {
  ProgramBuilder b(ProgType::kSocketFilter);
  b.Mov(kR1, 9);
  b.Call(kHelperSendSignal);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EINVAL);
}

}  // namespace
}  // namespace bpf
