// Edge-case regressions around the bounds machinery: extreme constants,
// overflow boundaries, 32/64-bit interactions, and spill/branch interplay —
// the corners where real verifier CVEs have historically lived.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"

namespace bpf {
namespace {

class VerifierEdgeTest : public ::testing::Test {
 protected:
  VerifierEdgeTest() : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  int Load(const Program& prog, VerifierResult* result = nullptr) {
    VerifierResult local;
    return bpf_.ProgLoad(prog, result != nullptr ? result : &local);
  }

  // Loads and, when accepted, runs and asserts a clean kernel.
  void LoadAndMaybeRun(const Program& prog) {
    const int fd = Load(prog);
    if (fd > 0) {
      bpf_.ProgTestRun(fd);
      EXPECT_TRUE(kernel_.reports().empty())
          << kernel_.reports().reports()[0].Signature();
    }
  }

  int CreateArray(uint32_t value_size) {
    MapDef def;
    def.type = MapType::kArray;
    def.key_size = 4;
    def.value_size = value_size;
    def.max_entries = 2;
    return bpf_.MapCreate(def);
  }

  // Emits the canonical lookup preamble leaving the value in R0 (null-checked
  // over |body| following insns).
  void Lookup(ProgramBuilder& b, int map_fd, int16_t guard_skip) {
    b.StoreImm(kSizeW, kR10, -4, 0);
    b.LdMapFd(kR1, map_fd);
    b.Mov(kR2, kR10);
    b.Add(kR2, -4);
    b.Call(kHelperMapLookupElem);
    b.JmpIf(kJmpJeq, kR0, 0, guard_skip);
  }

  Kernel kernel_;
  Bpf bpf_;
};

TEST_F(VerifierEdgeTest, IntMinImmediateArithmetic) {
  ProgramBuilder b;
  b.Mov(kR0, 0);
  b.LdImm64(kR6, 0x8000000000000000ull);
  b.Alu(kAluSub, kR6, 1);
  b.Raw(Neg(kR6));
  b.Ret();
  LoadAndMaybeRun(b.Build());
}

TEST_F(VerifierEdgeTest, AddOverflowWrapsToUnbounded) {
  const int map_fd = CreateArray(16);
  // r6 = UINT64_MAX-ish via unknown + huge constant: adding to a pointer
  // must be rejected even though the tnum looks partially known.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.LdImm64(kR7, 0xffffffffffffff00ull);
  b.Raw(AluReg(kAluAdd, kR6, kR7));
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeB, kR0, kR0, 0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierEdgeTest, UmaxBoundaryOffsetExactFit) {
  const int map_fd = CreateArray(16);
  // offset in [0,8], access size 8: 8+8 == 16 fits exactly.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 8);  // tnum: {0,8}
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeDw, kR7, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, UmaxBoundaryOffsetOffByOne) {
  const int map_fd = CreateArray(16);
  // offset can be 9: 9+8 > 16.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 9);
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeDw, kR7, kR0, 0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierEdgeTest, NegativeConstantPointerOffsetRejected) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b;
  Lookup(b, map_fd, 2);
  b.Add(kR0, -4);  // below the value start
  b.Load(kSizeW, kR7, kR0, 0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierEdgeTest, NegativeThenPositiveOffsetBalancesOut) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b;
  Lookup(b, map_fd, 3);
  b.Add(kR0, -4);
  b.Add(kR0, 4);  // net zero fixed offset
  b.Load(kSizeW, kR7, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, ShiftBy63ThenBranch) {
  // (unknown >> 63) is 0 or 1; both sides are decidable branches.
  const int map_fd = CreateArray(16);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.Alu(kAluRsh, kR6, 63);
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));  // offset <= 1
  b.Load(kSizeB, kR7, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, MulBoundedStaysBounded) {
  const int map_fd = CreateArray(64);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 7);
  b.Alu(kAluMul, kR6, 8);  // [0,56], multiples of 8
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeDw, kR7, kR0, 0);  // 56 + 8 == 64
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, ModBoundsOffset) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.Alu(kAluMod, kR6, 8);  // [0,7]
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeB, kR7, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, DivKeepsUpperBound) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 15);          // [0,15]
  b.Alu(kAluDiv, kR6, 2);  // [0,7]
  Lookup(b, map_fd, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeB, kR7, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, BoundsSurviveSpillFill) {
  const int map_fd = CreateArray(16);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 7);
  b.Store(kSizeDw, kR10, kR6, -16);  // spill the bounded scalar
  Lookup(b, map_fd, 3);
  b.Load(kSizeDw, kR6, kR10, -16);   // fill
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeB, kR7, kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, DoubleBranchIntersectsBounds) {
  const int map_fd = CreateArray(16);
  // 4 <= r6 <= 7 via two branches; offset base -4 => [0,3].
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  Lookup(b, map_fd, 6);
  b.JmpIf(kJmpJlt, kR6, 4, 5);   // fall: r6 >= 4
  b.JmpIf(kJmpJgt, kR6, 7, 4);   // fall: r6 <= 7
  b.Add(kR6, -4);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeB, kR7, kR0, 12);  // [12,15] + 1 <= 16
  b.Jmp(0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, BranchKnowledgeDoesNotLeakAcrossPaths) {
  const int map_fd = CreateArray(16);
  // The bound only holds on one path; the join must drop it.
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  Lookup(b, map_fd, 5);
  b.JmpIf(kJmpJgt, kR6, 7, 0);   // both branches fall to the same insn!
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeB, kR7, kR0, 0);
  b.Jmp(0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierEdgeTest, SixteenBitOffsetFieldExtremes) {
  // insn.off is s16: maximal magnitudes must be handled, not wrapped.
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 1);
  Insn load = LoadMem(kSizeDw, kR0, kR10, -32768);
  b.Raw(load);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierEdgeTest, ChainOf32BitTruncations) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.Raw(Alu32Imm(kAluAnd, kR6, 0xff));  // w6 in [0,255], zext
  b.Raw(Alu32Imm(kAluAdd, kR6, 1));     // [1,256]
  b.Alu(kAluRsh, kR6, 5);               // [0,8]
  b.Mov(kR0, kR6);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, MapValueAccessAcrossElements) {
  // Array values are contiguous; the verifier still fences each element.
  const int map_fd = CreateArray(16);  // 2 entries, 32 contiguous bytes
  ProgramBuilder b;
  Lookup(b, map_fd, 2);
  b.Load(kSizeDw, kR7, kR0, 16);  // start of element 1: out of *this* value
  b.Mov(kR0, 0);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierEdgeTest, StoreImmNegativeValueFullWidth) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, -1);
  b.Load(kSizeDw, kR0, kR10, -8);
  b.Ret();
  const int fd = Load(b.Build());
  ASSERT_GT(fd, 0);
  EXPECT_EQ(bpf_.ProgTestRun(fd).r0, kU64Max);  // sign-extended store
}

TEST_F(VerifierEdgeTest, JsetWithSignBit) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.Mov(kR0, 0);
  b.JmpIf(kJmpJset, kR6, static_cast<int32_t>(0x80000000), 1);
  b.Ret();
  b.Mov(kR0, 1);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierEdgeTest, RuntimeAgreesWithExactFitBounds) {
  // End-to-end: the exact-fit program runs clean under sanitation for every
  // packet seed (the bound is genuinely respected at runtime).
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 16;
  def.max_entries = 2;
  const int map_fd = bpf.MapCreate(def);
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR6, kR1, 0);
  b.And(kR6, 8);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);
  b.Raw(AluReg(kAluAdd, kR0, kR6));
  b.Load(kSizeDw, kR7, kR0, 0);
  b.RetImm(0);
  const int fd = bpf.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  for (uint64_t seed = 0; seed < 32; ++seed) {
    bpf.ProgTestRun(fd, 64, seed);
  }
  EXPECT_TRUE(kernel.reports().empty());
}

}  // namespace
}  // namespace bpf
