// The bpf(2) syscall surface and runtime plumbing: map syscalls, program
// load/readback path, test runs, tracepoint attachment policy, event firing,
// the XDP dispatcher, and the kernel aggregate.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/helpers.h"

namespace bpf {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  Program TrivialProg(ProgType type = ProgType::kSocketFilter, int32_t ret = 0) {
    ProgramBuilder b(type);
    b.RetImm(ret);
    return b.Build();
  }

  Kernel kernel_;
  Bpf bpf_;
};

TEST_F(RuntimeTest, MapSyscallRoundTrip) {
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 4;
  const int fd = bpf_.MapCreate(def);
  ASSERT_GT(fd, 0);

  const uint32_t key = 3;
  uint64_t value = 99;
  EXPECT_EQ(bpf_.MapUpdateElem(fd, &key, &value), 0);
  value = 0;
  EXPECT_EQ(bpf_.MapLookupElem(fd, &key, &value), 0);
  EXPECT_EQ(value, 99u);

  uint32_t next = 0;
  EXPECT_EQ(bpf_.MapGetNextKey(fd, nullptr, &next), 0);
  EXPECT_EQ(next, 3u);

  EXPECT_EQ(bpf_.MapDeleteElem(fd, &key), 0);
  EXPECT_EQ(bpf_.MapLookupElem(fd, &key, &value), -ENOENT);
}

TEST_F(RuntimeTest, MapSyscallsRejectBadFd) {
  const uint32_t key = 0;
  uint64_t value = 0;
  EXPECT_EQ(bpf_.MapUpdateElem(42, &key, &value), -EBADF);
  EXPECT_EQ(bpf_.MapLookupElem(42, &key, &value), -EBADF);
  EXPECT_EQ(bpf_.MapDeleteElem(42, &key), -EBADF);
  EXPECT_EQ(bpf_.MapGetNextKey(42, &key, &value), -EBADF);
  EXPECT_EQ(bpf_.MapLookupBatch(42, 4), -EINVAL);
}

TEST_F(RuntimeTest, ProgLifecycle) {
  const int fd = bpf_.ProgLoad(TrivialProg(ProgType::kSocketFilter, 7));
  ASSERT_GT(fd, 0);
  EXPECT_EQ(bpf_.prog_count(), 1u);
  const LoadedProgram* prog = bpf_.FindProg(fd);
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->type, ProgType::kSocketFilter);
  EXPECT_EQ(bpf_.FindProg(fd + 1), nullptr);
  EXPECT_EQ(bpf_.ProgTestRun(fd).r0, 7u);
  ExecResult missing = bpf_.ProgTestRun(fd + 1);
  EXPECT_EQ(missing.err, -EBADF);
}

TEST_F(RuntimeTest, AttachRequiresTracingProgType) {
  const int fd = bpf_.ProgLoad(TrivialProg(ProgType::kSocketFilter));
  EXPECT_EQ(bpf_.ProgAttach(fd, TracepointId::kSysEnter), -EINVAL);
  const int kfd = bpf_.ProgLoad(TrivialProg(ProgType::kKprobe));
  EXPECT_EQ(bpf_.ProgAttach(kfd, TracepointId::kSysEnter), 0);
  EXPECT_EQ(bpf_.ProgAttach(999, TracepointId::kSysEnter), -EBADF);
}

TEST_F(RuntimeTest, AttachedProgramRunsOnEvent) {
  // The program counts events into a map.
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 1;
  const int map_fd = bpf_.MapCreate(def);

  ProgramBuilder b(ProgType::kTracepoint);
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);
  b.Mov(kR1, 1);
  b.Raw(AtomicOp(kSizeDw, kR0, kR1, 0, kAtomicAdd));
  b.RetImm(0);
  const int fd = bpf_.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  ASSERT_EQ(bpf_.ProgAttach(fd, TracepointId::kSchedSwitch), 0);

  bpf_.FireEvent(TracepointId::kSchedSwitch);
  bpf_.FireEvent(TracepointId::kSchedSwitch);
  bpf_.FireEvent(TracepointId::kSysEnter);  // different target: no run

  const uint32_t key = 0;
  uint64_t counter = 0;
  EXPECT_EQ(bpf_.MapLookupElem(map_fd, &key, &counter), 0);
  EXPECT_EQ(counter, 2u);

  bpf_.DetachAll();
  bpf_.FireEvent(TracepointId::kSchedSwitch);
  bpf_.MapLookupElem(map_fd, &key, &counter);
  EXPECT_EQ(counter, 2u);
}

TEST_F(RuntimeTest, XdpInstallRunLifecycle) {
  EXPECT_EQ(bpf_.XdpRun().err, -ENOENT);  // nothing installed
  const int fd = bpf_.ProgLoad(TrivialProg(ProgType::kXdp, 2));
  ASSERT_GT(fd, 0);
  EXPECT_EQ(bpf_.XdpInstall(fd), 0);
  const ExecResult result = bpf_.XdpRun(64, 1);
  EXPECT_EQ(result.err, 0);
  EXPECT_EQ(result.r0, 2u);  // XDP_PASS
  // Non-XDP programs can't install.
  const int sock_fd = bpf_.ProgLoad(TrivialProg(ProgType::kSocketFilter));
  EXPECT_EQ(bpf_.XdpInstall(sock_fd), -EINVAL);
}

TEST_F(RuntimeTest, KernelBtfObjects) {
  EXPECT_NE(kernel_.BtfObjAddr(kBtfTaskStruct), 0u);
  EXPECT_NE(kernel_.BtfObjAddr(kBtfFile), 0u);
  EXPECT_NE(kernel_.BtfObjAddr(kBtfCgroup), 0u);
  // The current task is a kernel thread: no mm.
  EXPECT_EQ(kernel_.BtfObjAddr(kBtfMmStruct), 0u);
  EXPECT_EQ(kernel_.BtfObjAddr(12345), 0u);
  // task->pid readable through the arena.
  uint64_t pid = 0;
  kernel_.arena().CopyOut(kernel_.current_task_addr() + 16, &pid, 4);
  EXPECT_EQ(pid, 2u);
}

TEST_F(RuntimeTest, InternalFuncRegistry) {
  EXPECT_EQ(kernel_.FindInternalFunc(0x70000001), nullptr);
  kernel_.RegisterInternalFunc(0x70000001,
                               [](Kernel&, ExecContext&, const uint64_t*) { return 42ull; });
  const InternalFn* fn = kernel_.FindInternalFunc(0x70000001);
  ASSERT_NE(fn, nullptr);
  ExecContext ctx;
  const uint64_t args[5] = {};
  EXPECT_EQ((*fn)(kernel_, ctx, args), 42u);
}

TEST_F(RuntimeTest, TaskRefUnderflowWarns) {
  kernel_.TaskRefInc();
  kernel_.TaskRefDec();
  EXPECT_TRUE(kernel_.reports().empty());
  kernel_.TaskRefDec();
  EXPECT_FALSE(kernel_.reports().empty());
  EXPECT_EQ(kernel_.reports().reports()[0].kind, ReportKind::kWarn);
}

TEST_F(RuntimeTest, HelperDispatchUnknownHelperWarns) {
  ExecContext ctx;
  const uint64_t args[5] = {};
  DispatchHelper(kernel_, ctx, 4242, args);
  EXPECT_FALSE(kernel_.reports().empty());
}

TEST_F(RuntimeTest, TaskStorageHelpersStoreByTask) {
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 8;
  def.value_size = 16;
  def.max_entries = 4;
  const int map_fd = bpf_.MapCreate(def);
  Map* map = kernel_.maps().Find(map_fd);

  ExecContext ctx;
  const uint64_t get_args[5] = {map->obj_addr(), kernel_.current_task_addr(), 0, 1, 0};
  const uint64_t value_addr = DispatchHelper(kernel_, ctx, kHelperTaskStorageGet, get_args);
  EXPECT_NE(value_addr, 0u);
  // Second get without create finds the same storage.
  const uint64_t get2[5] = {map->obj_addr(), kernel_.current_task_addr(), 0, 0, 0};
  EXPECT_EQ(DispatchHelper(kernel_, ctx, kHelperTaskStorageGet, get2), value_addr);
  // Delete removes it.
  const uint64_t del_args[5] = {map->obj_addr(), kernel_.current_task_addr(), 0, 0, 0};
  EXPECT_EQ(DispatchHelper(kernel_, ctx, kHelperTaskStorageDelete, del_args), 0u);
  EXPECT_EQ(DispatchHelper(kernel_, ctx, kHelperTaskStorageGet, get2), 0u);
  kernel_.lockdep().Reset();
}

TEST_F(RuntimeTest, SendSignalSafeOutsideIrq) {
  ExecContext ctx;
  ctx.in_irq = false;
  const uint64_t args[5] = {9, 0, 0, 0, 0};
  EXPECT_EQ(DispatchHelper(kernel_, ctx, kHelperSendSignal, args), 0u);
  ctx.in_irq = true;  // fixed kernel: -EPERM, no panic
  EXPECT_EQ(static_cast<int64_t>(DispatchHelper(kernel_, ctx, kHelperSendSignal, args)),
            -EPERM);
  EXPECT_FALSE(kernel_.reports().panicked());
}

TEST_F(RuntimeTest, GetCurrentCommChecksDestination) {
  ExecContext ctx;
  const uint64_t bad[5] = {0x20, 16, 0, 0, 0};  // null-page destination
  EXPECT_EQ(static_cast<int64_t>(DispatchHelper(kernel_, ctx, kHelperGetCurrentComm, bad)),
            -EFAULT);
  EXPECT_FALSE(kernel_.reports().empty());
}

TEST_F(RuntimeTest, VersionedKernels) {
  Kernel old(KernelVersion::kV5_15, BugConfig::ForVersion(KernelVersion::kV5_15));
  EXPECT_EQ(old.version(), KernelVersion::kV5_15);
  EXPECT_TRUE(old.bugs().cve_2022_23222);
  EXPECT_FALSE(old.bugs().bug1_nullness_propagation);
  Kernel next(KernelVersion::kBpfNext, BugConfig::ForVersion(KernelVersion::kBpfNext));
  EXPECT_TRUE(next.bugs().bug1_nullness_propagation);
  EXPECT_FALSE(next.bugs().cve_2022_23222);
  EXPECT_EQ(BugConfig::All().Count(), 14);
  EXPECT_EQ(BugConfig::None().Count(), 0);
}

TEST_F(RuntimeTest, ProgTestRunReleasesResources) {
  const int fd = bpf_.ProgLoad(TrivialProg(ProgType::kXdp, 1));
  const size_t before = kernel_.arena().live_allocations();
  for (int i = 0; i < 10; ++i) {
    bpf_.ProgTestRun(fd, 128, i);
  }
  EXPECT_EQ(kernel_.arena().live_allocations(), before);
}

TEST_F(RuntimeTest, KernelFeatureMatrix) {
  const KernelFeatures v5 = KernelFeatures::For(KernelVersion::kV5_15);
  EXPECT_FALSE(v5.kfunc_calls);
  EXPECT_FALSE(v5.nullness_propagation);
  EXPECT_TRUE(v5.ringbuf);
  const KernelFeatures v6 = KernelFeatures::For(KernelVersion::kV6_1);
  EXPECT_TRUE(v6.kfunc_calls);
  EXPECT_FALSE(v6.nullness_propagation);
  const KernelFeatures next = KernelFeatures::For(KernelVersion::kBpfNext);
  EXPECT_TRUE(next.nullness_propagation);
  EXPECT_TRUE(next.bpf_loop_helper);
  EXPECT_STREQ(KernelVersionName(KernelVersion::kV5_15), "v5.15");
  EXPECT_STREQ(KernelVersionName(KernelVersion::kBpfNext), "bpf-next");
}

}  // namespace
}  // namespace bpf
