// Parallel sharded campaign engine (DESIGN.md §9): job-count invariance of
// findings / outcome histograms / coverage / StatsDigest, cross-job-count
// checkpoint resume, the digest-keyed verdict cache's digest-invisibility,
// and thread safety of the global coverage registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/parallel.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/insn.h"
#include "src/kernel/coverage.h"
#include "src/kernel/fault_inject.h"

namespace bvf {
namespace {

using bpf::BugConfig;
using bpf::Coverage;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.iterations = 240;
  options.seed = 11;
  options.bugs = BugConfig::All();
  options.fault.probability = 0.05;
  options.confirm_runs = 1;
  options.epoch_len = 32;
  return options;
}

CampaignStats RunParallel(const CampaignOptions& options) {
  StructuredGenerator generator(options.version);
  ParallelFuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

// Signature+iteration pairs identify the finding set independent of digests.
std::vector<std::pair<std::string, uint64_t>> FindingKeys(const CampaignStats& stats) {
  std::vector<std::pair<std::string, uint64_t>> keys;
  for (const Finding& finding : stats.findings) {
    keys.emplace_back(finding.signature, finding.iteration);
  }
  return keys;
}

std::set<std::string> CoverageKeySet() {
  const std::vector<std::string> keys = Coverage::Get().SerializeHitKeys();
  return std::set<std::string>(keys.begin(), keys.end());
}

// ---- CaseSeed ----

TEST(CaseSeedTest, DecorrelatedFromFaultSeedAndSpread) {
  // Different iterations give different seeds, and the stream is not the
  // fault-schedule stream (a correlated pair would couple generation
  // randomness to fault decisions).
  std::set<uint64_t> seen;
  for (uint64_t i = 1; i <= 1000; ++i) {
    const uint64_t s = CaseSeed(42, i);
    EXPECT_NE(s, bpf::FaultSeed(42, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

// ---- Job-count invariance ----

TEST(ParallelInvarianceTest, FourJobsMatchOneJobBitForBit) {
  CampaignOptions options = SmallCampaign();

  options.jobs = 1;
  const CampaignStats one = RunParallel(options);
  const std::set<std::string> one_coverage = CoverageKeySet();

  options.jobs = 4;
  const CampaignStats four = RunParallel(options);
  const std::set<std::string> four_coverage = CoverageKeySet();

  EXPECT_EQ(StatsDigest(one), StatsDigest(four));
  EXPECT_EQ(FindingKeys(one), FindingKeys(four));
  EXPECT_EQ(one.outcomes, four.outcomes);
  EXPECT_EQ(one.exec_errno, four.exec_errno);
  EXPECT_EQ(one.reject_errno, four.reject_errno);
  EXPECT_EQ(one.final_coverage, four.final_coverage);
  EXPECT_EQ(one_coverage, four_coverage);
  EXPECT_EQ(one.fault_injected, four.fault_injected);
  EXPECT_EQ(one.panics, four.panics);
  EXPECT_EQ(one.substrate_rebuilds, four.substrate_rebuilds);
  // Both ran real campaigns.
  EXPECT_EQ(one.iterations, options.iterations);
  EXPECT_GT(one.accepted, 0u);
  EXPECT_FALSE(one.findings.empty());
  // Confirmation verdicts survive the merge identically.
  for (size_t i = 0; i < one.findings.size(); ++i) {
    EXPECT_EQ(one.findings[i].confirmation, four.findings[i].confirmation);
  }
}

TEST(ParallelInvarianceTest, OddJobCountAndShortFinalEpoch) {
  // 240 is not a multiple of 3*32; exercises uneven worker strides and the
  // short final epoch path.
  CampaignOptions options = SmallCampaign();
  options.iterations = 230;  // not a multiple of epoch_len
  options.jobs = 3;
  const CampaignStats three = RunParallel(options);
  options.jobs = 1;
  const CampaignStats one = RunParallel(options);
  EXPECT_EQ(StatsDigest(one), StatsDigest(three));
  EXPECT_EQ(one.iterations, 230u);
}

TEST(ParallelInvarianceTest, EpochLengthIsSemantics) {
  // Changing jobs must not change results; changing epoch_len may (it moves
  // the snapshot barriers). Since checkpoint v2 the engine and epoch length
  // are structured checkpoint fields, validated field-wise on resume — guard
  // that the validator separates the two and names the mismatching field.
  CampaignOptions options = SmallCampaign();
  CampaignCheckpoint cp;
  cp.fingerprint = FingerprintOptions(options, "bvf");
  cp.engine = kEngineParallel;
  cp.epoch_len = options.epoch_len;
  EXPECT_EQ(ValidateCheckpointCompat(cp, options, "bvf", kEngineParallel), "");

  // jobs is not semantics: any job count resumes the same checkpoint.
  options.jobs = 8;
  EXPECT_EQ(ValidateCheckpointCompat(cp, options, "bvf", kEngineParallel), "");

  // epoch_len is semantics: the mismatch is rejected, by name.
  options.epoch_len = 64;
  const std::string epoch_mismatch =
      ValidateCheckpointCompat(cp, options, "bvf", kEngineParallel);
  EXPECT_NE(epoch_mismatch.find("epoch_len"), std::string::npos) << epoch_mismatch;
  options.epoch_len = cp.epoch_len;

  // Engine tag separates serial from parallel checkpoints, by name.
  const std::string engine_mismatch =
      ValidateCheckpointCompat(cp, options, "bvf", kEngineSerial);
  EXPECT_NE(engine_mismatch.find("engine"), std::string::npos) << engine_mismatch;

  // Options-fingerprint mismatch is the third named axis.
  options.seed += 1;
  const std::string options_mismatch =
      ValidateCheckpointCompat(cp, options, "bvf", kEngineParallel);
  EXPECT_NE(options_mismatch.find("fingerprint"), std::string::npos) << options_mismatch;
}

// ---- Checkpoint / resume across job counts ----

TEST(ParallelResumeTest, FourJobCheckpointResumesBitIdenticallyAtOneJob) {
  CampaignOptions options = SmallCampaign();

  options.jobs = 2;
  const CampaignStats full = RunParallel(options);

  // Simulated kill mid-run at 8 jobs; stop_after is quantized up to the
  // containing epoch's end (100 -> 128 with epoch_len 32).
  const std::string path = TempPath("parallel_resume.bvfcp");
  CampaignOptions first_leg = options;
  first_leg.jobs = 4;
  first_leg.stop_after = 100;
  first_leg.checkpoint_path = path;
  first_leg.checkpoint_every = 64;
  const CampaignStats partial = RunParallel(first_leg);
  EXPECT_EQ(partial.iterations, 128u);

  CampaignOptions second_leg = options;
  second_leg.jobs = 1;
  second_leg.resume_path = path;
  const CampaignStats continued = RunParallel(second_leg);

  EXPECT_TRUE(continued.resume_error.empty()) << continued.resume_error;
  EXPECT_EQ(continued.resumed_from, 129u);
  EXPECT_EQ(continued.iterations, options.iterations);
  EXPECT_EQ(StatsDigest(continued), StatsDigest(full));
  EXPECT_EQ(FindingKeys(continued), FindingKeys(full));
  EXPECT_EQ(continued.final_coverage, full.final_coverage);
  std::remove(path.c_str());
}

TEST(ParallelResumeTest, SerialCheckpointIsRejected) {
  // Serial and parallel checkpoints are not interchangeable: the serial
  // engine's RNG stream position has no meaning for per-iteration seeds.
  CampaignOptions options = SmallCampaign();
  options.confirm_runs = 0;
  const std::string path = TempPath("serial_for_parallel.bvfcp");
  CampaignOptions serial_leg = options;
  serial_leg.stop_after = 64;
  serial_leg.checkpoint_path = path;
  StructuredGenerator generator(options.version);
  Fuzzer serial(generator, serial_leg);
  serial.Run();

  CampaignOptions resume_leg = options;
  resume_leg.resume_path = path;
  const CampaignStats rejected = RunParallel(resume_leg);
  EXPECT_FALSE(rejected.resume_error.empty());
  EXPECT_EQ(rejected.iterations, 0u);
  std::remove(path.c_str());
}

// ---- Verdict cache ----

// Generates tiny accept-able programs drawn from a 4-element space, so cache
// hits are guaranteed once a program repeats across epochs.
class TinySpaceGenerator : public Generator {
 public:
  const char* name() const override { return "tiny-space"; }
  FuzzCase Generate(bpf::Rng& rng) override {
    FuzzCase fc;
    fc.prog.type = bpf::ProgType::kSocketFilter;
    fc.prog.insns = {bpf::MovImm(bpf::kR0, static_cast<int32_t>(rng.Below(4))),
                     bpf::Exit()};
    fc.test_runs = 1;
    return fc;
  }
  std::unique_ptr<Generator> Clone() const override {
    return std::make_unique<TinySpaceGenerator>();
  }
};

CampaignStats RunTiny(int jobs, bool cache) {
  CampaignOptions options;
  options.iterations = 200;
  options.seed = 5;
  options.epoch_len = 32;
  options.jobs = jobs;
  options.verdict_cache = cache;
  options.coverage_feedback = false;  // a 4-program space has no corpus to grow
  TinySpaceGenerator generator;
  ParallelFuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

TEST(VerdictCacheTest, HitsNeverChangeResults) {
  const CampaignStats off = RunTiny(1, false);
  const CampaignStats on = RunTiny(1, true);
  EXPECT_EQ(StatsDigest(off), StatsDigest(on));
  EXPECT_EQ(off.verdict_cache_hits, 0u);
  EXPECT_EQ(off.verdict_cache_misses, 0u);
  // 4 distinct programs, 200 iterations, lookups against the previous epoch's
  // committed store: everything after epoch 1 hits.
  EXPECT_GT(on.verdict_cache_hits, 100u);
  EXPECT_GE(on.verdict_cache_misses, 4u);
  EXPECT_EQ(on.verdict_cache_hits + on.verdict_cache_misses, 200u);
}

TEST(VerdictCacheTest, HitMissCountersAreJobCountInvariant) {
  const CampaignStats one = RunTiny(1, true);
  const CampaignStats three = RunTiny(3, true);
  EXPECT_EQ(StatsDigest(one), StatsDigest(three));
  EXPECT_EQ(one.verdict_cache_hits, three.verdict_cache_hits);
  EXPECT_EQ(one.verdict_cache_misses, three.verdict_cache_misses);
}

TEST(VerdictCacheTest, CacheWorksOnRealCampaignWithoutChangingDigest) {
  CampaignOptions options = SmallCampaign();
  options.jobs = 2;
  const CampaignStats off = RunParallel(options);
  options.verdict_cache = true;
  const CampaignStats on = RunParallel(options);
  EXPECT_EQ(StatsDigest(off), StatsDigest(on));
  EXPECT_EQ(FindingKeys(off), FindingKeys(on));
  EXPECT_EQ(on.verdict_cache_hits + on.verdict_cache_misses, options.iterations);
}

TEST(VerdictCacheTest, SerialEngineImmediateModeIsDigestPreserving) {
  CampaignOptions options = SmallCampaign();
  StructuredGenerator g1(options.version);
  Fuzzer off(g1, options);
  const CampaignStats stats_off = off.Run();

  options.verdict_cache = true;
  StructuredGenerator g2(options.version);
  Fuzzer on(g2, options);
  const CampaignStats stats_on = on.Run();

  EXPECT_EQ(StatsDigest(stats_off), StatsDigest(stats_on));
  EXPECT_EQ(stats_off.findings.size(), stats_on.findings.size());
  EXPECT_EQ(stats_on.verdict_cache_hits + stats_on.verdict_cache_misses,
            options.iterations);
}

// ---- Checkpoint carries cache counters ----

TEST(VerdictCacheTest, CountersSurviveCheckpointResume) {
  const std::string path = TempPath("vcache_resume.bvfcp");
  CampaignOptions options;
  options.iterations = 200;
  options.seed = 5;
  options.epoch_len = 32;
  options.verdict_cache = true;
  options.coverage_feedback = false;
  options.jobs = 2;

  TinySpaceGenerator g1;
  ParallelFuzzer full_fuzzer(g1, options);
  const CampaignStats full = full_fuzzer.Run();

  CampaignOptions first_leg = options;
  first_leg.stop_after = 96;
  first_leg.checkpoint_path = path;
  TinySpaceGenerator g2;
  ParallelFuzzer interrupted(g2, first_leg);
  interrupted.Run();

  CampaignOptions second_leg = options;
  second_leg.jobs = 1;
  second_leg.resume_path = path;
  TinySpaceGenerator g3;
  ParallelFuzzer resumed(g3, second_leg);
  const CampaignStats continued = resumed.Run();

  EXPECT_TRUE(continued.resume_error.empty()) << continued.resume_error;
  EXPECT_EQ(StatsDigest(continued), StatsDigest(full));
  // The resumed process starts with a cold cache, so it re-misses what the
  // first leg had committed: hit totals are process-dependent, but every
  // lookup is still accounted exactly once.
  EXPECT_EQ(continued.verdict_cache_hits + continued.verdict_cache_misses,
            options.iterations);
  std::remove(path.c_str());
}

// Extracts the space-separated counter fields of the checkpoint line that
// starts with `tag` ("vcache" / "dcache"), or an empty vector if absent.
std::vector<uint64_t> CheckpointLineFields(const std::string& path,
                                           const std::string& tag) {
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(tag + " ", 0) == 0) {
      std::vector<uint64_t> fields;
      std::istringstream fs(line.substr(tag.size() + 1));
      uint64_t v = 0;
      while (fs >> v) {
        fields.push_back(v);
      }
      return fields;
    }
  }
  return {};
}

TEST(CacheCounterResumeTest, BothCachesResumeIdenticallyAtAnyJobCount) {
  // The round-trip gap this guards: a mid-campaign checkpoint whose vcache
  // AND dcache lines both carry real traffic must resume with identical
  // hit/miss/evict counters whatever --jobs the second leg uses. The tiny
  // 4-program space guarantees verdict hits; the decoded engine gives the decode
  // cache the same traffic.
  const std::string path = TempPath("both_caches_resume.bvfcp");
  CampaignOptions options;
  options.iterations = 200;
  options.seed = 5;
  options.epoch_len = 32;
  options.verdict_cache = true;
  options.interp_engine = bpf::ExecEngine::kDecoded;
  options.coverage_feedback = false;
  options.jobs = 2;

  TinySpaceGenerator g1;
  ParallelFuzzer full_fuzzer(g1, options);
  const CampaignStats full = full_fuzzer.Run();

  CampaignOptions first_leg = options;
  first_leg.stop_after = 96;
  first_leg.checkpoint_path = path;
  TinySpaceGenerator g2;
  ParallelFuzzer interrupted(g2, first_leg);
  interrupted.Run();

  // The checkpoint must carry non-empty cache counter lines: both caches saw
  // traffic before the cut, and that state is what the resume inherits.
  const std::vector<uint64_t> vcache = CheckpointLineFields(path, "vcache");
  ASSERT_EQ(vcache.size(), 2u);
  EXPECT_GT(vcache[0] + vcache[1], 0u) << "checkpoint vcache line is empty";
  const std::vector<uint64_t> dcache = CheckpointLineFields(path, "dcache");
  ASSERT_EQ(dcache.size(), 3u);
  EXPECT_GT(dcache[0] + dcache[1], 0u) << "checkpoint dcache line is empty";

  // Resume the same checkpoint at two different job counts.
  CampaignOptions second_leg = options;
  second_leg.jobs = 1;
  second_leg.resume_path = path;
  TinySpaceGenerator g3;
  ParallelFuzzer resumed_one(g3, second_leg);
  const CampaignStats one = resumed_one.Run();

  second_leg.jobs = 3;
  TinySpaceGenerator g4;
  ParallelFuzzer resumed_three(g4, second_leg);
  const CampaignStats three = resumed_three.Run();

  EXPECT_TRUE(one.resume_error.empty()) << one.resume_error;
  EXPECT_TRUE(three.resume_error.empty()) << three.resume_error;
  EXPECT_EQ(StatsDigest(one), StatsDigest(full));
  EXPECT_EQ(StatsDigest(three), StatsDigest(full));

  // The counters themselves must not drift with the resume's job count.
  EXPECT_EQ(one.verdict_cache_hits, three.verdict_cache_hits);
  EXPECT_EQ(one.verdict_cache_misses, three.verdict_cache_misses);
  EXPECT_EQ(one.decode_cache_hits, three.decode_cache_hits);
  EXPECT_EQ(one.decode_cache_misses, three.decode_cache_misses);
  EXPECT_EQ(one.decode_cache_evictions, three.decode_cache_evictions);
  // Every lookup is accounted exactly once across the two processes.
  EXPECT_EQ(one.verdict_cache_hits + one.verdict_cache_misses,
            options.iterations);
  EXPECT_EQ(one.decode_cache_hits + one.decode_cache_misses,
            options.iterations);
  std::remove(path.c_str());
}

// ---- Coverage registry thread safety ----

TEST(CoverageThreadingTest, ConcurrentGlobalHitsCountEachSiteOnce) {
  Coverage& cov = Coverage::Get();
  const int base = cov.RegisterGroup(__FILE__, __LINE__, 64);
  cov.ResetHits();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 64; ++i) {
          cov.Hit(base + i);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(cov.hit_count(), 64u);
  cov.ResetHits();
}

TEST(CoverageThreadingTest, SinksIsolateWorkersUntilCommit) {
  Coverage& cov = Coverage::Get();
  const int base = cov.RegisterGroup(__FILE__, __LINE__, 8);
  cov.ResetHits();

  bpf::CoverageSink sink;
  bpf::CoverageSink* previous = Coverage::InstallThreadSink(&sink);
  sink.BeginCase();
  cov.Hit(base);
  cov.Hit(base + 1);
  cov.Hit(base);  // duplicate
  EXPECT_EQ(sink.NewSinceCase(), 2u);
  EXPECT_EQ(cov.hit_count(), 0u);  // nothing committed yet

  EXPECT_EQ(cov.Commit(sink), 2u);
  EXPECT_EQ(cov.hit_count(), 2u);
  EXPECT_TRUE(cov.Committed(base));

  // After commit, the same sites are no longer case-novel.
  sink.BeginCase();
  cov.Hit(base);
  EXPECT_EQ(sink.NewSinceCase(), 0u);

  Coverage::InstallThreadSink(previous);
  cov.ResetHits();
}

}  // namespace
}  // namespace bvf
