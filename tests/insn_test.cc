// Instruction encoding, constructors, decomposition predicates, and the
// disassembler.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/ebpf/insn.h"

namespace bpf {
namespace {

TEST(InsnTest, ClassDecomposition) {
  EXPECT_EQ(MovReg(kR1, kR2).Class(), kClassAlu64);
  EXPECT_EQ(Mov32Reg(kR1, kR2).Class(), kClassAlu);
  EXPECT_EQ(LoadMem(kSizeDw, kR1, kR2, 0).Class(), kClassLdx);
  EXPECT_EQ(StoreMemReg(kSizeW, kR1, kR2, 0).Class(), kClassStx);
  EXPECT_EQ(StoreMemImm(kSizeB, kR1, 0, 0).Class(), kClassSt);
  EXPECT_EQ(JmpA(0).Class(), kClassJmp);
  EXPECT_EQ(Jmp32Imm(kJmpJeq, kR1, 0, 0).Class(), kClassJmp32);
}

TEST(InsnTest, AluOpExtraction) {
  EXPECT_EQ(AluImm(kAluAdd, kR1, 5).AluOp(), kAluAdd);
  EXPECT_EQ(AluReg(kAluXor, kR1, kR2).AluOp(), kAluXor);
  EXPECT_TRUE(AluReg(kAluXor, kR1, kR2).SrcIsReg());
  EXPECT_FALSE(AluImm(kAluXor, kR1, 3).SrcIsReg());
}

TEST(InsnTest, AccessBytes) {
  EXPECT_EQ(LoadMem(kSizeB, kR0, kR1, 0).AccessBytes(), 1);
  EXPECT_EQ(LoadMem(kSizeH, kR0, kR1, 0).AccessBytes(), 2);
  EXPECT_EQ(LoadMem(kSizeW, kR0, kR1, 0).AccessBytes(), 4);
  EXPECT_EQ(LoadMem(kSizeDw, kR0, kR1, 0).AccessBytes(), 8);
}

TEST(InsnTest, Predicates) {
  EXPECT_TRUE(LoadMem(kSizeDw, kR0, kR1, 8).IsMemLoad());
  EXPECT_FALSE(LoadMem(kSizeDw, kR0, kR1, 8).IsMemStore());
  EXPECT_TRUE(StoreMemReg(kSizeDw, kR1, kR2, -8).IsMemStore());
  EXPECT_TRUE(StoreMemImm(kSizeDw, kR1, -8, 1).IsMemStore());
  EXPECT_TRUE(AtomicOp(kSizeDw, kR1, kR2, 0, kAtomicAdd).IsAtomic());
  EXPECT_FALSE(AtomicOp(kSizeDw, kR1, kR2, 0, kAtomicAdd).IsMemStore());
  EXPECT_TRUE(CallHelper(1).IsHelperCall());
  EXPECT_TRUE(CallKfunc(100).IsKfuncCall());
  EXPECT_TRUE(CallPseudoFunc(3).IsBpfToBpfCall());
  EXPECT_TRUE(Exit().IsExit());
  EXPECT_TRUE(LdImm64Lo(kR1, 0, 0).IsLdImm64());
}

TEST(InsnTest, LdImm64Pair) {
  const uint64_t value = 0xdeadbeefcafebabeull;
  const Insn lo = LdImm64Lo(kR3, kPseudoMapFd, value);
  const Insn hi = LdImm64Hi(value);
  EXPECT_EQ(static_cast<uint32_t>(lo.imm), 0xcafebabeu);
  EXPECT_EQ(static_cast<uint32_t>(hi.imm), 0xdeadbeefu);
  EXPECT_EQ(lo.src, kPseudoMapFd);
  EXPECT_EQ(hi.opcode, 0);
}

TEST(InsnTest, EqualityOperator) {
  EXPECT_EQ(MovImm(kR1, 5), MovImm(kR1, 5));
  EXPECT_NE(MovImm(kR1, 5), MovImm(kR1, 6));
  EXPECT_NE(MovImm(kR1, 5), MovImm(kR2, 5));
}

TEST(DisasmTest, AluForms) {
  EXPECT_EQ(Disassemble(MovImm(kR1, 5)), "r1 = 5");
  EXPECT_EQ(Disassemble(MovReg(kR1, kR2)), "r1 = r2");
  EXPECT_EQ(Disassemble(AluImm(kAluAdd, kR3, -4)), "r3 += -4");
  EXPECT_EQ(Disassemble(Alu32Imm(kAluAdd, kR3, 4)), "wr3 += 4");
  EXPECT_EQ(Disassemble(Neg(kR5)), "r5 = -r5");
}

TEST(DisasmTest, MemForms) {
  EXPECT_EQ(Disassemble(LoadMem(kSizeDw, kR0, kR1, 8)), "r0 = *(u64 *)(r1 +8)");
  EXPECT_EQ(Disassemble(StoreMemReg(kSizeW, kR10, kR2, -4)), "*(u32 *)(r10 -4) = r2");
  EXPECT_EQ(Disassemble(StoreMemImm(kSizeB, kR1, 0, 7)), "*(u8 *)(r1 +0) = 7");
}

TEST(DisasmTest, JmpForms) {
  EXPECT_EQ(Disassemble(JmpA(3)), "goto +3");
  EXPECT_EQ(Disassemble(JmpImm(kJmpJeq, kR0, 0, 2)), "if r0 == 0 goto +2");
  EXPECT_EQ(Disassemble(JmpReg(kJmpJgt, kR1, kR2, -4)), "if r1 > r2 goto -4");
  EXPECT_EQ(Disassemble(Jmp32Imm(kJmpJslt, kR3, 7, 1)), "if wr3 s< 7 goto +1");
  EXPECT_EQ(Disassemble(CallHelper(1)), "call helper#1");
  EXPECT_EQ(Disassemble(CallKfunc(100)), "call kfunc#100");
  EXPECT_EQ(Disassemble(Exit()), "exit");
}

TEST(DisasmTest, LdImm64Forms) {
  EXPECT_EQ(Disassemble(LdImm64Lo(kR1, kPseudoMapFd, 3)), "r1 = 0x3 ll map_fd");
  EXPECT_EQ(Disassemble(LdImm64Lo(kR2, kPseudoBtfId, 1)), "r2 = 0x1 ll btf_id");
  EXPECT_EQ(Disassemble(LdImm64Lo(kR2, 0, 0x42)), "r2 = 0x42 ll");
}

TEST(BuilderTest, FluentChainBuildsProgram) {
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 2).Add(kR0, 1).Ret();
  const Program prog = b.Build();
  EXPECT_EQ(prog.type, ProgType::kXdp);
  ASSERT_EQ(prog.size(), 3u);
  EXPECT_TRUE(prog.insns[2].IsExit());
}

TEST(BuilderTest, LdMapFdEmitsTwoSlots) {
  ProgramBuilder b;
  b.LdMapFd(kR1, 7);
  EXPECT_EQ(b.size(), 2u);
  const Program prog = b.Build();
  EXPECT_TRUE(prog.insns[0].IsLdImm64());
  EXPECT_EQ(prog.insns[0].imm, 7);
}

TEST(BuilderTest, ProgramDisassembleNumbersLines) {
  ProgramBuilder b;
  b.RetImm(0);
  const std::string text = b.Build().Disassemble();
  EXPECT_NE(text.find("0: r0 = 0"), std::string::npos);
  EXPECT_NE(text.find("1: exit"), std::string::npos);
}

TEST(RegNameTest, Names) {
  EXPECT_EQ(RegName(0), "r0");
  EXPECT_EQ(RegName(10), "r10");
  EXPECT_EQ(RegName(11), "r11");
}

}  // namespace
}  // namespace bpf
