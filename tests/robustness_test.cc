// Robustness engine (DESIGN.md §8): fault-injection schedules and replay,
// per-case execution guards, panic containment with substrate rebuild,
// case-boundary kernel hygiene, finding confirmation, and campaign
// checkpoint/resume bit-identity.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/checkpoint.h"
#include "src/core/fuzzer.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/insn.h"
#include "src/kernel/coverage.h"
#include "src/kernel/fault_inject.h"
#include "src/runtime/bpf_syscall.h"

namespace bvf {
namespace {

uint64_t OutcomeCount(const CampaignStats& stats, CaseOutcome outcome) {
  const auto it = stats.outcomes.find(outcome);
  return it == stats.outcomes.end() ? 0 : it->second;
}

uint64_t ExecErrnoCount(const CampaignStats& stats, int err) {
  const auto it = stats.exec_errno.find(err);
  return it == stats.exec_errno.end() ? 0 : it->second;
}

using bpf::BugConfig;
using bpf::Coverage;
using bpf::FaultConfig;
using bpf::FaultInjector;
using bpf::FaultLog;
using bpf::FaultPoint;
using bpf::KernelVersion;

// ---- Fault injector semantics ----

TEST(FaultInjectorTest, InactiveConfigNeverFails) {
  FaultInjector injector(FaultConfig{}, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ShouldFail(FaultPoint::kKmalloc));
  }
  EXPECT_EQ(injector.total_failures(), 0u);
  EXPECT_TRUE(injector.log().empty());
}

TEST(FaultInjectorTest, DeterministicForSeed) {
  FaultConfig config;
  config.probability = 0.3;
  FaultInjector a(config, 7);
  FaultInjector b(config, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.ShouldFail(FaultPoint::kHelperCall), b.ShouldFail(FaultPoint::kHelperCall));
  }
  EXPECT_EQ(a.log().size(), b.log().size());
  EXPECT_GT(a.total_failures(), 0u);
}

TEST(FaultInjectorTest, IntervalFiresEveryNth) {
  FaultConfig config;
  config.interval = 3;
  FaultInjector injector(config, 1);
  int failures = 0;
  for (int i = 1; i <= 9; ++i) {
    const bool failed = injector.ShouldFail(FaultPoint::kMapCreate);
    EXPECT_EQ(failed, i % 3 == 0) << "call " << i;
    failures += failed ? 1 : 0;
  }
  EXPECT_EQ(failures, 3);
}

TEST(FaultInjectorTest, SpaceSkipsInitialCallsAndTimesCaps) {
  FaultConfig config;
  config.interval = 1;  // would otherwise fail every call
  config.space = 4;
  config.times = 2;
  FaultInjector injector(config, 1);
  std::vector<bool> decisions;
  for (int i = 0; i < 10; ++i) {
    decisions.push_back(injector.ShouldFail(FaultPoint::kKmalloc));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(decisions[i]) << "space should protect call " << i + 1;
  }
  EXPECT_EQ(injector.total_failures(), 2u);  // capped by times
}

TEST(FaultInjectorTest, DisabledPointNeverFails) {
  FaultConfig config;
  config.interval = 1;
  config.enabled[static_cast<int>(FaultPoint::kMapUpdate)] = false;
  FaultInjector injector(config, 1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(injector.ShouldFail(FaultPoint::kMapUpdate));
  }
  EXPECT_TRUE(injector.ShouldFail(FaultPoint::kMapCreate));
}

TEST(FaultInjectorTest, ReplayReproducesExactSchedule) {
  FaultConfig config;
  config.probability = 0.4;
  FaultInjector original(config, 99);
  std::vector<bool> decisions;
  for (int i = 0; i < 200; ++i) {
    decisions.push_back(original.ShouldFail(FaultPoint::kHelperCall));
  }
  ASSERT_GT(original.total_failures(), 0u);

  FaultInjector replay = FaultInjector::Replay(original.log());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(replay.ShouldFail(FaultPoint::kHelperCall), decisions[i]) << "call " << i + 1;
  }
  EXPECT_EQ(replay.total_failures(), original.total_failures());
}

TEST(FaultInjectorTest, FaultSeedIsIterationSensitive) {
  EXPECT_NE(bpf::FaultSeed(1, 1), bpf::FaultSeed(1, 2));
  EXPECT_NE(bpf::FaultSeed(1, 1), bpf::FaultSeed(2, 1));
  EXPECT_EQ(bpf::FaultSeed(5, 17), bpf::FaultSeed(5, 17));
}

// ---- Fault points wired into the substrate ----

TEST(FaultPointTest, AllocatorFailsUnderInjection) {
  bpf::Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  FaultConfig config;
  config.interval = 1;
  FaultInjector injector(config, 1);
  kernel.set_fault_injector(&injector);
  EXPECT_EQ(kernel.alloc().Kmalloc(64, "test"), 0u);
  EXPECT_EQ(kernel.alloc().Kvmalloc(64, "test"), 0u);
  kernel.set_fault_injector(nullptr);
  EXPECT_NE(kernel.alloc().Kmalloc(64, "test"), 0u);
}

TEST(FaultPointTest, MapCreateFailsUnderInjection) {
  bpf::Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  bpf::Bpf bpf(kernel);
  FaultConfig config;
  config.interval = 1;
  config.enabled[static_cast<int>(FaultPoint::kKmalloc)] = false;
  config.enabled[static_cast<int>(FaultPoint::kKvmalloc)] = false;
  FaultInjector injector(config, 1);
  kernel.set_fault_injector(&injector);
  EXPECT_EQ(bpf.MapCreate(bpf::MapDef{}), -ENOMEM);
  kernel.set_fault_injector(nullptr);
  EXPECT_GT(bpf.MapCreate(bpf::MapDef{}), 0);
}

// ---- Execution guards ----

TEST(ExecGuardTest, StepBudgetClassifiesAsTimeout) {
  CampaignOptions options;
  options.iterations = 60;
  options.seed = 5;
  options.limits.step_budget = 4;  // nothing real finishes in four steps
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  EXPECT_GT(OutcomeCount(stats, CaseOutcome::kExecTimeout), 0u);
  EXPECT_GT(ExecErrnoCount(stats, ELOOP), 0u);
  EXPECT_GT(stats.exec_failures, 0u);
}

TEST(ExecGuardTest, ArenaBudgetClassifiesAsResourceExhausted) {
  CampaignOptions options;
  options.iterations = 40;
  options.seed = 5;
  options.arena_budget = 1;  // below even the execution-context allocation
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  EXPECT_GT(OutcomeCount(stats, CaseOutcome::kResourceExhausted), 0u);
  EXPECT_GT(ExecErrnoCount(stats, ENOMEM), 0u);
  // Allocation failure is a classified outcome, not a crash signature: the
  // fixed kernel must stay finding-free even while starved.
  EXPECT_TRUE(stats.findings.empty());
}

TEST(ExecGuardTest, BudgetTripsAreCounted) {
  bpf::Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  kernel.arena().set_alloc_budget(kernel.arena().bytes_in_use() + 64);
  EXPECT_NE(kernel.arena().Alloc(32, "fits"), 0u);
  EXPECT_EQ(kernel.arena().Alloc(4096, "too big"), 0u);
  EXPECT_GE(kernel.arena().budget_trips(), 1u);
}

// ---- Case-boundary hygiene (satellite: no cross-case state leaks) ----

TEST(ResetCaseStateTest, RestoresBootSubstrate) {
  bpf::Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  const size_t boot_bytes = kernel.arena().bytes_in_use();
  const size_t boot_allocs = kernel.arena().live_allocations();

  // Dirty every subsystem ResetCaseState must scrub.
  bpf::Bpf bpf(kernel);
  ASSERT_GT(bpf.MapCreate(bpf::MapDef{}), 0);
  const uint64_t addr = kernel.arena().Alloc(128, "case junk");
  ASSERT_NE(addr, 0u);
  kernel.arena().Free(addr);  // parks metadata in the KASAN quarantine
  EXPECT_GT(kernel.arena().quarantine_size(), 0u);
  kernel.lockdep().Acquire(kernel.lock_rq(), bpf::LockContext::kNormal);
  kernel.reports().Report(bpf::ReportKind::kWarn, "test", "leftover");
  kernel.NextKtime();
  kernel.NextPrandom();

  kernel.ResetCaseState();

  EXPECT_TRUE(kernel.reports().empty());
  EXPECT_EQ(kernel.lockdep().depth(), 0u);
  EXPECT_EQ(kernel.maps().maps().size(), 0u);
  EXPECT_EQ(kernel.arena().bytes_in_use(), boot_bytes);
  EXPECT_EQ(kernel.arena().live_allocations(), boot_allocs);
  EXPECT_EQ(kernel.arena().quarantine_size(), 0u);

  // Determinism: a rewound substrate hands out the same guest addresses a
  // freshly booted one would (bump allocation restarts at the boot mark).
  bpf::Kernel fresh(KernelVersion::kBpfNext, BugConfig::None());
  EXPECT_EQ(kernel.arena().Alloc(64, "probe"), fresh.arena().Alloc(64, "probe"));
}

TEST(ResetCaseStateTest, LockdepUsageDoesNotLeakAcrossCases) {
  bpf::Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  // Case 1 uses rq_lock in tracepoint context.
  kernel.lockdep().Acquire(kernel.lock_rq(), bpf::LockContext::kTracepoint);
  kernel.lockdep().Release(kernel.lock_rq());
  EXPECT_TRUE(kernel.lockdep().UsedInTracepoint(kernel.lock_rq()));

  kernel.ResetCaseState();

  // Case 2 uses it in normal context: without the reset this pairing would
  // (falsely) look like an inconsistent-lock-state report waiting to happen.
  EXPECT_FALSE(kernel.lockdep().UsedInTracepoint(kernel.lock_rq()));
  kernel.lockdep().Acquire(kernel.lock_rq(), bpf::LockContext::kNormal);
  kernel.lockdep().Release(kernel.lock_rq());
  EXPECT_TRUE(kernel.reports().empty());
}

// ---- Campaign-level robustness ----

TEST(RobustCampaignTest, FaultCampaignOnFixedKernelStaysClean) {
  CampaignOptions options;
  options.iterations = 150;
  options.seed = 13;
  options.fault.probability = 0.2;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();

  EXPECT_GT(stats.fault_injected, 0u);
  // Injected failures surface as classified outcomes, never as findings: a
  // fixed kernel under memory pressure is degraded, not buggy.
  EXPECT_TRUE(stats.findings.empty());
  uint64_t classified = 0;
  for (const auto& [outcome, count] : stats.outcomes) {
    if (outcome != CaseOutcome::kUnclassified) {
      classified += count;
    }
  }
  EXPECT_EQ(classified, stats.iterations);
  EXPECT_EQ(stats.outcomes.count(CaseOutcome::kUnclassified), 0u);
}

TEST(RobustCampaignTest, FaultCampaignIsDeterministic) {
  CampaignOptions options;
  options.iterations = 120;
  options.seed = 29;
  options.bugs = BugConfig::All();
  options.fault.probability = 0.15;
  StructuredGenerator g1(options.version);
  Fuzzer f1(g1, options);
  const CampaignStats a = f1.Run();
  StructuredGenerator g2(options.version);
  Fuzzer f2(g2, options);
  const CampaignStats b = f2.Run();
  EXPECT_EQ(StatsDigest(a), StatsDigest(b));
  EXPECT_GT(a.fault_injected, 0u);
}

TEST(RobustCampaignTest, PanicIsContainedAndCampaignCompletes) {
  CampaignOptions options;
  options.iterations = 400;
  options.seed = 7;
  options.bugs = BugConfig::All();  // includes bug #6, whose trigger panics
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();

  ASSERT_GT(stats.panics, 0u);
  EXPECT_EQ(stats.substrate_rebuilds, stats.panics);
  EXPECT_EQ(stats.iterations, options.iterations);  // ran to completion
  EXPECT_EQ(OutcomeCount(stats, CaseOutcome::kPanic), stats.panics);
  EXPECT_TRUE(stats.FoundBug(KnownBug::kBug6SendSignal));
}

TEST(RobustCampaignTest, SubstrateReuseMatchesFreshPerCase) {
  CampaignOptions options;
  options.iterations = 200;
  options.seed = 77;
  options.bugs = BugConfig::All();
  StructuredGenerator g1(options.version);
  Fuzzer f1(g1, options);
  const CampaignStats reused = f1.Run();

  options.reuse_substrate = false;
  StructuredGenerator g2(options.version);
  Fuzzer f2(g2, options);
  const CampaignStats fresh = f2.Run();

  EXPECT_EQ(StatsDigest(reused), StatsDigest(fresh));
}

// ---- Finding confirmation ----

TEST(ConfirmationTest, InjectedBugFindingsAreDeterministic) {
  CampaignOptions options;
  options.iterations = 200;
  options.seed = 7;
  options.bugs = BugConfig::All();
  options.confirm_runs = 3;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();

  ASSERT_FALSE(stats.findings.empty());
  for (const Finding& finding : stats.findings) {
    EXPECT_EQ(finding.confirmation, Confirmation::kDeterministic) << finding.signature;
    EXPECT_EQ(finding.confirm_hits, 3) << finding.signature;
    EXPECT_EQ(finding.confirm_runs, 3) << finding.signature;
  }
}

TEST(ConfirmationTest, FaultOnlyFindingClassifiedFaultDependent) {
  // Bug #8 mishandles kmemdup failure; organically that needs a program past
  // KMALLOC_MAX, but a kmalloc fault point makes every load hit the path.
  // Clean re-execution cannot reproduce it; fault-log replay must.
  CampaignOptions options;
  options.iterations = 30;
  options.seed = 3;
  options.bugs.bug8_kmemdup = true;
  options.fault.probability = 1.0;
  options.fault.enabled = {};  // disarm everything...
  options.fault.enabled[static_cast<int>(FaultPoint::kKmalloc)] = true;  // ...but kmalloc
  options.confirm_runs = 2;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();

  bool saw_fault_dependent = false;
  for (const Finding& finding : stats.findings) {
    if (finding.confirmation == Confirmation::kFaultDependent) {
      saw_fault_dependent = true;
      EXPECT_EQ(finding.confirm_runs, 4);  // 2 clean misses + 2 replay hits
    }
  }
  EXPECT_TRUE(saw_fault_dependent);
}

// ---- Checkpoint / resume ----

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, RoundTripPreservesEverything) {
  CampaignCheckpoint cp;
  cp.next_iteration = 42;
  cp.fingerprint = "00ff00ff00ff00ff";
  cp.rng_state = {1ull, 0xffffffffffffffffull, 3ull, 0x8000000000000000ull};
  cp.stats.tool = "bvf structured";
  cp.stats.iterations = 41;
  cp.stats.accepted = 30;
  cp.stats.rejected = 11;
  cp.stats.reject_errno[22] = 7;
  cp.stats.exec_errno[12] = 2;
  cp.stats.exec_failures = 2;
  cp.stats.outcomes[CaseOutcome::kExecOk] = 28;
  cp.stats.outcomes[CaseOutcome::kPanic] = 1;
  cp.stats.panics = 1;
  cp.stats.curve.push_back(CoveragePoint{10, 100});
  Finding finding;
  finding.kind = bpf::ReportKind::kKasanUseAfterFree;
  finding.signature = "KASAN: uaf with\nnewline and \\backslash";
  finding.details = "details";
  finding.indicator = 2;
  finding.triaged = KnownBug::kBug9BucketIteration;
  finding.iteration = 17;
  finding.confirmation = Confirmation::kFaultDependent;
  finding.confirm_hits = 2;
  finding.confirm_runs = 4;
  cp.stats.findings.push_back(finding);
  cp.stats.finding_signatures.insert(finding.signature);
  FuzzCase fc;
  fc.prog.type = bpf::ProgType::kXdp;
  fc.prog.insns = {bpf::MovImm(bpf::kR0, -5), bpf::Exit()};
  fc.maps.push_back(bpf::MapDef{bpf::MapType::kHash, 4, 16, 8});
  fc.do_attach = true;
  fc.events.push_back(bpf::TracepointId::kSysEnter);
  cp.corpus.push_back(fc);
  cp.coverage_keys = {"a.cc:10:0", "b.cc:20:3"};

  const std::string path = TempPath("roundtrip.bvfcp");
  ASSERT_EQ(SaveCheckpoint(path, cp), 0);
  CampaignCheckpoint loaded;
  std::string error;
  ASSERT_EQ(LoadCheckpoint(path, &loaded, &error), 0) << error;

  EXPECT_EQ(loaded.next_iteration, cp.next_iteration);
  EXPECT_EQ(loaded.fingerprint, cp.fingerprint);
  EXPECT_EQ(loaded.rng_state, cp.rng_state);
  EXPECT_EQ(loaded.coverage_keys, cp.coverage_keys);
  EXPECT_EQ(StatsDigest(loaded.stats), StatsDigest(cp.stats));
  ASSERT_EQ(loaded.stats.findings.size(), 1u);
  EXPECT_EQ(loaded.stats.findings[0].signature, finding.signature);
  EXPECT_EQ(loaded.stats.findings[0].confirmation, Confirmation::kFaultDependent);
  ASSERT_EQ(loaded.corpus.size(), 1u);
  EXPECT_EQ(loaded.corpus[0].prog.insns.size(), 2u);
  EXPECT_EQ(loaded.corpus[0].prog.insns[0].imm, -5);
  EXPECT_EQ(loaded.corpus[0].prog.type, bpf::ProgType::kXdp);
  ASSERT_EQ(loaded.corpus[0].maps.size(), 1u);
  EXPECT_EQ(loaded.corpus[0].maps[0].value_size, 16u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsCorruptFile) {
  const std::string path = TempPath("corrupt.bvfcp");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("not a checkpoint\n", f);
  fclose(f);
  CampaignCheckpoint cp;
  std::string error;
  EXPECT_LT(LoadCheckpoint(path, &cp, &error), 0);
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsTruncatedFileNamingTheDamage) {
  // A machine dying mid-write must not yield a silently half-loaded
  // checkpoint. v2 saves are atomic (temp + rename), so a truncated file can
  // only be pre-v2 tooling or filesystem damage — reject it, clearly.
  CampaignCheckpoint cp;
  cp.next_iteration = 65;
  cp.fingerprint = "00ff00ff00ff00ff";
  cp.stats.iterations = 64;
  const std::string path = TempPath("truncated.bvfcp");
  ASSERT_EQ(SaveCheckpoint(path, cp), 0);

  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  is.close();
  const std::string whole = buf.str();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << whole.substr(0, whole.size() - 30);  // cut into the checksum trailer
  os.close();

  CampaignCheckpoint loaded;
  std::string error;
  EXPECT_LT(LoadCheckpoint(path, &loaded, &error), 0);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsBitFlipViaChecksum) {
  CampaignCheckpoint cp;
  cp.next_iteration = 65;
  cp.fingerprint = "00ff00ff00ff00ff";
  cp.stats.iterations = 64;
  cp.stats.accepted = 40;
  const std::string path = TempPath("bitflip.bvfcp");
  ASSERT_EQ(SaveCheckpoint(path, cp), 0);

  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  is.close();
  std::string whole = buf.str();
  // Corrupt one digit inside the stats body, keeping the line structure.
  const size_t pos = whole.find("counters 64 40");
  ASSERT_NE(pos, std::string::npos);
  whole[pos + 9] = '9';
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << whole;
  os.close();

  CampaignCheckpoint loaded;
  std::string error;
  EXPECT_LT(LoadCheckpoint(path, &loaded, &error), 0);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveIsAtomicNoPartialFileOnExistingCheckpoint) {
  // The temp+rename discipline means a save either fully lands or leaves the
  // previous checkpoint untouched; there is never a moment where |path| holds
  // a half-written file. Simulate the failure half by making the temp file's
  // directory the only writable piece: save to a path, then verify a second
  // save overwrites it atomically (load between the two must see one or the
  // other, never a hybrid — here we just assert the final state is complete).
  CampaignCheckpoint cp;
  cp.next_iteration = 65;
  cp.fingerprint = "00ff00ff00ff00ff";
  const std::string path = TempPath("atomic.bvfcp");
  ASSERT_EQ(SaveCheckpoint(path, cp), 0);
  cp.next_iteration = 129;
  ASSERT_EQ(SaveCheckpoint(path, cp), 0);
  CampaignCheckpoint loaded;
  std::string error;
  ASSERT_EQ(LoadCheckpoint(path, &loaded, &error), 0) << error;
  EXPECT_EQ(loaded.next_iteration, 129u);
  // No temp-file litter left behind.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  std::remove(path.c_str());
}

TEST(ResumeTest, ResumedCampaignIsBitIdenticalToStraightRun) {
  CampaignOptions options;
  options.iterations = 300;
  options.seed = 7;
  options.bugs = BugConfig::All();
  options.fault.probability = 0.1;

  StructuredGenerator g1(options.version);
  Fuzzer straight(g1, options);
  const CampaignStats full = straight.Run();

  // Simulated mid-run kill at iteration 150, checkpointing along the way.
  const std::string path = TempPath("resume.bvfcp");
  CampaignOptions first_leg = options;
  first_leg.stop_after = 150;
  first_leg.checkpoint_path = path;
  first_leg.checkpoint_every = 70;
  StructuredGenerator g2(options.version);
  Fuzzer interrupted(g2, first_leg);
  const CampaignStats partial = interrupted.Run();
  EXPECT_EQ(partial.iterations, 150u);

  CampaignOptions second_leg = options;
  second_leg.resume_path = path;
  StructuredGenerator g3(options.version);
  Fuzzer resumed(g3, second_leg);
  const CampaignStats continued = resumed.Run();

  EXPECT_TRUE(continued.resume_error.empty()) << continued.resume_error;
  EXPECT_EQ(continued.resumed_from, 151u);
  EXPECT_EQ(continued.iterations, 300u);
  EXPECT_EQ(StatsDigest(continued), StatsDigest(full));
  EXPECT_EQ(continued.findings.size(), full.findings.size());
  EXPECT_EQ(continued.final_coverage, full.final_coverage);
  std::remove(path.c_str());
}

TEST(ResumeTest, MismatchedOptionsAreRejected) {
  CampaignOptions options;
  options.iterations = 40;
  options.seed = 11;
  const std::string path = TempPath("mismatch.bvfcp");
  options.checkpoint_path = path;
  StructuredGenerator g1(options.version);
  Fuzzer writer(g1, options);
  writer.Run();

  CampaignOptions other = options;
  other.checkpoint_path.clear();
  other.resume_path = path;
  other.seed = 12;  // different campaign: fingerprint must not match
  StructuredGenerator g2(options.version);
  Fuzzer reader(g2, other);
  const CampaignStats stats = reader.Run();
  EXPECT_FALSE(stats.resume_error.empty());
  EXPECT_EQ(stats.iterations, 0u);
  std::remove(path.c_str());
}

TEST(CoverageCheckpointTest, HitKeysRoundTripIncludingPending) {
  Coverage& cov = Coverage::Get();
  cov.ResetHits();

  // Produce real coverage, then restore it onto a cleared hit set.
  CampaignOptions options;
  options.iterations = 30;
  options.seed = 2;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  fuzzer.Run();
  const size_t covered = cov.hit_count();
  ASSERT_GT(covered, 0u);
  const std::vector<std::string> keys = cov.SerializeHitKeys();
  EXPECT_EQ(keys.size(), covered);

  cov.ResetHits();
  EXPECT_EQ(cov.hit_count(), 0u);
  cov.RestoreHitKeys(keys);
  EXPECT_EQ(cov.hit_count(), covered);

  // A key for a site this process never registered stays pending but still
  // counts as covered (cross-process resume), and round-trips on re-save.
  cov.ResetHits();
  std::vector<std::string> with_pending = keys;
  with_pending.push_back("not_a_real_file.cc:1:0");
  cov.RestoreHitKeys(with_pending);
  EXPECT_EQ(cov.hit_count(), covered + 1);
  const std::vector<std::string> resaved = cov.SerializeHitKeys();
  EXPECT_EQ(resaved.size(), covered + 1);

  cov.ResetHits();  // leave the process-global clean for other tests
}

}  // namespace
}  // namespace bvf
