// Indicator #3 end-to-end: the verifier exports per-instruction abstract-state
// claims, the interpreter records concrete register witnesses, and the audit
// reports any witness outside its claim. Seeding the synthetic bounds bug
// (bug12_jmp32_signed_refine) must produce exactly the indicator #3 finding --
// the corrupted s32 range never feeds a pointer offset, so indicators #1/#2
// stay silent -- and a no-bug kernel must audit completely clean.

#include <gtest/gtest.h>

#include "src/analysis/state_audit.h"
#include "src/core/fuzzer.h"
#include "src/core/oracle.h"
#include "src/core/repro.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/insn.h"
#include "src/runtime/bpf_syscall.h"
#include "src/verifier/helper_protos.h"

namespace bvf {
namespace {

using bpf::BugConfig;
using bpf::KernelVersion;

BugConfig Bug12Only() {
  BugConfig bugs = BugConfig::None();
  bugs.bug12_jmp32_signed_refine = true;
  return bugs;
}

// r0 = get_prandom_u32(); if w0 > 1, the buggy jmp32 refinement claims
// s32_min(r0) = 2 on the taken path -- false whenever the random draw has
// bit 31 set (0x80000000 is > 1 unsigned but negative signed).
FuzzCase Bug12TriggerCase() {
  FuzzCase the_case;
  the_case.prog.type = bpf::ProgType::kSocketFilter;
  the_case.prog.insns = {
      bpf::CallHelper(bpf::kHelperGetPrandomU32),
      bpf::Jmp32Imm(bpf::kJmpJgt, bpf::kR0, 1, 2),
      bpf::MovImm(bpf::kR0, 0),
      bpf::Exit(),
      bpf::MovImm(bpf::kR1, 7),  // claim for r0 is audited on arrival here
      bpf::Exit(),
  };
  the_case.test_runs = 8;  // 8 random draws: P(no sign bit seen) = 2^-8
  return the_case;
}

TEST(StateAuditTest, Bug12HandcraftedRepro) {
  CampaignOptions options;
  options.bugs = Bug12Only();
  bool accepted = false;
  const std::set<std::string> signatures =
      ExecuteCase(Bug12TriggerCase(), options, &accepted);
  ASSERT_TRUE(accepted);

  // Exactly one deduped finding: the s32_min containment miss. Nothing from
  // indicators #1/#2.
  ASSERT_EQ(signatures.size(), 1u) << *signatures.begin();
  EXPECT_NE(signatures.begin()->find("bpf_state_audit: s32_min violation"),
            std::string::npos)
      << *signatures.begin();
}

TEST(StateAuditTest, Bug12ReproTriagesToBug12) {
  bpf::Kernel kernel(KernelVersion::kBpfNext, Bug12Only());
  bpf::Bpf bpf(kernel);
  bpf.set_exec_observer(
      [&kernel](const bpf::LoadedProgram& prog, const bpf::WitnessTrace& trace) {
        AuditAndReport(prog, trace, kernel.reports());
      });
  const FuzzCase the_case = Bug12TriggerCase();
  const int fd = bpf.ProgLoad(the_case.prog);
  ASSERT_GT(fd, 0);
  for (int run = 0; run < the_case.test_runs; ++run) {
    bpf.ProgTestRun(fd, 64, static_cast<uint64_t>(run));
  }
  const std::vector<Finding> findings =
      ClassifyReports(kernel.reports(), 0, /*iteration=*/0);
  ASSERT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.indicator, 3);
    EXPECT_EQ(finding.triaged, KnownBug::kBug12Jmp32SignedRefine);
  }
}

TEST(StateAuditTest, NoBugKernelAuditsClean) {
  // A correct verifier's claims must contain every concrete execution: the
  // audit on a no-bug kernel is the soundness regression test for the whole
  // claim-recording protocol.
  CampaignOptions options;
  options.bugs = BugConfig::None();
  const std::set<std::string> signatures = ExecuteCase(Bug12TriggerCase(), options);
  EXPECT_TRUE(signatures.empty()) << *signatures.begin();
}

TEST(StateAuditTest, CampaignBug12OnlyIndicator3Sees) {
  CampaignOptions options;
  options.bugs = Bug12Only();
  // The trigger needs a jmp32 unsigned compare whose operand carries a
  // full-range runtime value (in practice a prandom draw with bit 31 set)
  // surviving to the join -- rare enough that a short campaign can miss it.
  options.iterations = 1500;
  options.seed = 5;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();

  int ind3 = 0;
  for (const Finding& finding : stats.findings) {
    EXPECT_EQ(finding.indicator, 3) << finding.signature;
    if (finding.indicator == 3) ++ind3;
  }
  EXPECT_GT(ind3, 0) << "campaign never tripped the state audit";
}

TEST(StateAuditTest, CampaignNoBugsNoAuditFindings) {
  CampaignOptions options;
  options.bugs = BugConfig::None();
  options.iterations = 300;
  options.seed = 17;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  for (const Finding& finding : stats.findings) {
    EXPECT_NE(finding.indicator, 3) << finding.signature << "\n" << finding.details;
  }
}

TEST(StateAuditTest, AuditDisabledRecordsNothing) {
  CampaignOptions options;
  options.bugs = Bug12Only();
  options.audit_state = false;
  const std::set<std::string> signatures = ExecuteCase(Bug12TriggerCase(), options);
  EXPECT_TRUE(signatures.empty());
}

}  // namespace
}  // namespace bvf
