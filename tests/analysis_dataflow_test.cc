// Dataflow passes over the bytecode CFG: liveness, reaching definitions with
// uninitialized-def tracking, and the lints built on them -- including the
// cross-check that verifier-accepted structured programs are lint-clean.

#include <gtest/gtest.h>

#include "src/analysis/cfg.h"
#include "src/analysis/lints.h"
#include "src/analysis/liveness.h"
#include "src/analysis/reaching_defs.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/insn.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/kernel.h"
#include "src/verifier/helper_protos.h"

namespace bvf {
namespace {

using namespace bpf;

Program Prog(std::vector<Insn> insns) {
  Program prog;
  prog.insns = std::move(insns);
  return prog;
}

// ---- use/def masks ----

TEST(LivenessTest, UseDefMasks) {
  EXPECT_EQ(InsnUseMask(MovImm(kR3, 7)), 0);
  EXPECT_EQ(InsnDefMask(MovImm(kR3, 7)), RegBit(kR3));
  EXPECT_EQ(InsnUseMask(MovReg(kR3, kR7)), RegBit(kR7));
  EXPECT_EQ(InsnUseMask(AluReg(kAluAdd, kR3, kR7)), RegBit(kR3) | RegBit(kR7));
  EXPECT_EQ(InsnUseMask(LoadMem(kSizeW, kR2, kR10, -8)), RegBit(kR10));
  EXPECT_EQ(InsnDefMask(LoadMem(kSizeW, kR2, kR10, -8)), RegBit(kR2));
  EXPECT_EQ(InsnUseMask(StoreMemReg(kSizeDw, kR10, kR4, -16)),
            RegBit(kR10) | RegBit(kR4));
  EXPECT_EQ(InsnDefMask(StoreMemReg(kSizeDw, kR10, kR4, -16)), 0);
  EXPECT_EQ(InsnUseMask(Exit()), RegBit(kR0));

  // Calls use the argument registers and clobber R0-R5.
  const Insn call = CallHelper(1);
  EXPECT_EQ(InsnUseMask(call),
            RegBit(kR1) | RegBit(kR2) | RegBit(kR3) | RegBit(kR4) | RegBit(kR5));
  EXPECT_EQ(InsnDefMask(call), RegBit(kR0) | RegBit(kR1) | RegBit(kR2) |
                                   RegBit(kR3) | RegBit(kR4) | RegBit(kR5));

  // Atomic fetch-add writes the old value back into src; cmpxchg works on R0.
  const Insn fetch_add = AtomicOp(kSizeDw, kR10, kR2, -8, kAtomicAdd | kAtomicFetch);
  EXPECT_EQ(InsnDefMask(fetch_add), RegBit(kR2));
  const Insn cmpxchg = AtomicOp(kSizeDw, kR10, kR2, -8, kAtomicCmpXchg);
  EXPECT_EQ(InsnDefMask(cmpxchg), RegBit(kR0));
  EXPECT_NE(InsnUseMask(cmpxchg) & RegBit(kR0), 0);
}

TEST(LivenessTest, StraightLine) {
  //  0: r1 = 5        (r1 dead after 1)
  //  1: r0 = r1
  //  2: exit          (uses r0)
  const Program prog = Prog({MovImm(kR1, 5), MovReg(kR0, kR1), Exit()});
  const Cfg cfg = BuildCfg(prog);
  const LivenessResult live = ComputeLiveness(prog, cfg);
  EXPECT_EQ(live.live_in[0], 0);             // r1 defined here, nothing live in
  EXPECT_EQ(live.live_out[0], RegBit(kR1));  // consumed by insn 1
  EXPECT_EQ(live.live_in[1], RegBit(kR1));
  EXPECT_EQ(live.live_out[1], RegBit(kR0));
  EXPECT_EQ(live.live_in[2], RegBit(kR0));
  EXPECT_EQ(live.live_out[2], 0);
}

TEST(LivenessTest, BranchJoinKeepsBothArmsAlive) {
  //  0: r2 = 1
  //  1: if r1 == 0 goto +1
  //  2: r2 = 2
  //  3: r0 = r2      <- r2 live on both edges into this block
  //  4: exit
  const Program prog = Prog({
      MovImm(kR2, 1),
      JmpImm(kJmpJeq, kR1, 0, 1),
      MovImm(kR2, 2),
      MovReg(kR0, kR2),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const LivenessResult live = ComputeLiveness(prog, cfg);
  EXPECT_NE(live.live_out[1] & RegBit(kR2), 0);  // taken edge: r2 from insn 0
  EXPECT_EQ(live.live_in[3] & RegBit(kR2), RegBit(kR2));
  // r1 is live at entry (used by the branch before any def).
  EXPECT_NE(live.live_in[0] & RegBit(kR1), 0);
}

TEST(LivenessTest, LoopKeepsCounterAlive) {
  const Program prog = Prog({
      MovImm(kR6, 10),
      AluImm(kAluSub, kR6, 1),
      JmpImm(kJmpJne, kR6, 0, -2),
      MovImm(kR0, 0),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const LivenessResult live = ComputeLiveness(prog, cfg);
  // Around the back edge the counter must stay live.
  EXPECT_NE(live.live_out[2] & RegBit(kR6), 0);
  EXPECT_NE(live.live_in[1] & RegBit(kR6), 0);
}

// ---- reaching definitions ----

TEST(ReachingDefsTest, EntryRegistersPerCallingConvention) {
  const Program prog = Prog({MovImm(kR0, 0), Exit()});
  const Cfg cfg = BuildCfg(prog);
  const ReachingDefs rd = ComputeReachingDefs(prog, cfg);
  // Main entry: R1 and R10 are initialized, the rest is junk.
  EXPECT_FALSE(rd.UninitReaches(0, kR1));
  EXPECT_FALSE(rd.UninitReaches(0, kR10));
  EXPECT_TRUE(rd.UninitReaches(0, kR0));
  EXPECT_TRUE(rd.UninitReaches(0, kR6));
  // After the def, R0 is clean.
  EXPECT_FALSE(rd.UninitReaches(1, kR0));
}

TEST(ReachingDefsTest, CallClobbersArgumentRegisters) {
  const Program prog = Prog({
      MovImm(kR1, 1),
      MovImm(kR2, 2),
      CallHelper(kHelperKtimeGetNs),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const ReachingDefs rd = ComputeReachingDefs(prog, cfg);
  EXPECT_FALSE(rd.UninitReaches(2, kR1));
  // After the call: R0 holds the result, R1-R5 are garbage again.
  EXPECT_FALSE(rd.UninitReaches(3, kR0));
  EXPECT_TRUE(rd.UninitReaches(3, kR1));
  EXPECT_TRUE(rd.UninitReaches(3, kR2));
}

TEST(ReachingDefsTest, PartialInitAcrossBranch) {
  //  0: if r1 == 0 goto +1
  //  1: r2 = 1            (only one arm defines r2)
  //  2: r0 = r2           <- join: an uninit def still reaches
  //  3: exit
  const Program prog = Prog({
      JmpImm(kJmpJeq, kR1, 0, 1),
      MovImm(kR2, 1),
      MovReg(kR0, kR2),
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const ReachingDefs rd = ComputeReachingDefs(prog, cfg);
  EXPECT_TRUE(rd.UninitReaches(2, kR2));
  ASSERT_GE(rd.DefsReaching(2, kR2).size(), 2u);  // entry junk + insn 1
}

TEST(ReachingDefsTest, SubprogramEntryArgsInitialized) {
  const Program prog = Prog({
      MovImm(kR1, 1),
      CallPseudoFunc(2),
      MovImm(kR0, 0),
      Exit(),
      MovReg(kR0, kR1),  // subprog: args R1-R5 valid, R6-R9 are caller's
      Exit(),
  });
  const Cfg cfg = BuildCfg(prog);
  const ReachingDefs rd = ComputeReachingDefs(prog, cfg);
  EXPECT_FALSE(rd.UninitReaches(4, kR5));
  EXPECT_TRUE(rd.UninitReaches(4, kR6));
  EXPECT_TRUE(rd.UninitReaches(4, kR0));
}

// ---- lints ----

TEST(LintTest, UninitReadFlagged) {
  const Program prog = Prog({MovReg(kR0, kR7), Exit()});
  const LintReport report = LintProgram(prog);
  ASSERT_FALSE(report.lints.empty());
  EXPECT_EQ(report.lints[0].kind, LintKind::kUninitRead);
  EXPECT_EQ(report.lints[0].reg, kR7);
  EXPECT_TRUE(report.CertainReject());
}

TEST(LintTest, UnreachableCodeFlagged) {
  const Program prog = Prog({
      MovImm(kR0, 0),
      Exit(),
      MovImm(kR0, 1),
      Exit(),
  });
  const LintReport report = LintProgram(prog);
  bool found = false;
  for (const Lint& lint : report.lints) {
    found |= lint.kind == LintKind::kUnreachableBlock;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(report.CertainReject());
}

TEST(LintTest, DeadStackStoreFlaggedButNotRejecting) {
  const Program prog = Prog({
      StoreMemImm(kSizeDw, kR10, -8, 42),  // never read back
      MovImm(kR0, 0),
      Exit(),
  });
  const LintReport report = LintProgram(prog);
  ASSERT_EQ(report.lints.size(), 1u) << report.ToString();
  EXPECT_EQ(report.lints[0].kind, LintKind::kDeadStackStore);
  EXPECT_FALSE(report.CertainReject());
}

TEST(LintTest, ReadStackStoreNotFlagged) {
  const Program prog = Prog({
      StoreMemImm(kSizeDw, kR10, -8, 42),
      LoadMem(kSizeDw, kR0, kR10, -8),
      Exit(),
  });
  const LintReport report = LintProgram(prog);
  EXPECT_TRUE(report.lints.empty()) << report.ToString();
}

TEST(LintTest, EscapedFramePointerSuppressesDeadStore) {
  // r5 = r10 escapes the frame pointer; the store may be read through r5 by
  // downstream code or helpers, so it must not be flagged.
  const Program prog = Prog({
      MovReg(kR5, kR10),
      StoreMemImm(kSizeDw, kR10, -8, 42),
      MovImm(kR0, 0),
      Exit(),
  });
  const LintReport report = LintProgram(prog);
  EXPECT_TRUE(report.lints.empty()) << report.ToString();
}

TEST(LintTest, CleanProgramHasNoLints) {
  const Program prog = Prog({
      MovImm(kR0, 1),
      JmpImm(kJmpJeq, kR1, 0, 1),
      AluImm(kAluAdd, kR0, 1),
      Exit(),
  });
  const LintReport report = LintProgram(prog);
  EXPECT_TRUE(report.lints.empty()) << report.ToString();
}

// Cross-check against the verifier: every structured program the verifier
// accepts must be lint-clean of certain-reject lints (no false positives on
// the filter path), and liveness/CFG must not crash on anything generated.
TEST(LintTest, AcceptedStructuredProgramsAreLintClean) {
  StructuredGenerator generator(KernelVersion::kBpfNext);
  Rng rng(99);
  int accepted = 0;
  for (int i = 0; i < 120; ++i) {
    FuzzCase the_case = generator.Generate(rng);
    const Cfg cfg = BuildCfg(the_case.prog);
    ComputeLiveness(the_case.prog, cfg);
    const LintReport report = LintProgram(the_case.prog);

    Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
    Bpf bpf(kernel);
    for (const MapDef& def : the_case.maps) bpf.MapCreate(def);
    if (bpf.ProgLoad(the_case.prog) > 0) {
      ++accepted;
      EXPECT_FALSE(report.CertainReject())
          << report.ToString() << the_case.prog.Disassemble();
    }
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace bvf
