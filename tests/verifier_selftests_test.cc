// A test_verifier-style table: self-contained programs with an expected
// verdict, in the spirit of the kernel's tools/testing/selftests/bpf
// verifier tests that the paper's §6.4 uses as its dataset.

#include <gtest/gtest.h>

#include <functional>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"

namespace bpf {
namespace {

struct SelfTest {
  const char* name;
  ProgType type;
  // Builds the program; may create maps through the Bpf handle first.
  std::function<Program(Bpf&)> build;
  int expected_err;  // 0 = accept
};

int ArrayMapFd(Bpf& bpf, uint32_t value_size = 16, uint32_t entries = 4) {
  MapDef def;
  def.type = MapType::kArray;
  def.key_size = 4;
  def.value_size = value_size;
  def.max_entries = entries;
  return bpf.MapCreate(def);
}

class SelfTestSuite : public ::testing::TestWithParam<SelfTest> {};

TEST_P(SelfTestSuite, Verdict) {
  const SelfTest& test = GetParam();
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  const Program prog = test.build(bpf);
  VerifierResult result;
  const int fd = bpf.ProgLoad(prog, &result);
  if (test.expected_err == 0) {
    EXPECT_GT(fd, 0) << test.name << "\n" << result.log;
    if (fd > 0) {
      const ExecResult exec = bpf.ProgTestRun(fd);
      EXPECT_NE(exec.err, -EFAULT) << test.name << ": " << exec.abort_reason;
      EXPECT_TRUE(kernel.reports().empty())
          << test.name << ": " << kernel.reports().reports()[0].Signature();
    }
  } else {
    EXPECT_EQ(fd, test.expected_err) << test.name << "\n" << result.log;
  }
}

const SelfTest kTests[] = {
    {"empty main body",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"mov chain keeps provenance",
     ProgType::kSocketFilter,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf);
       ProgramBuilder b;
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR3, fd);
       b.Mov(kR4, kR3);
       b.Mov(kR1, kR4);  // map ptr through two movs
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"stack boundary at -512",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.StoreImm(kSizeDw, kR10, -512, 1);
       b.Load(kSizeDw, kR0, kR10, -512);
       b.Ret();
       return b.Build();
     },
     0},
    {"stack boundary past -512",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.StoreImm(kSizeDw, kR10, -513, 1);
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"stack read above fp",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Load(kSizeDw, kR0, kR10, 8);
       b.Ret();
       return b.Build();
     },
     -EACCES},
    {"byte store straddling stack top",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.StoreImm(kSizeDw, kR10, -4, 1);  // [-4, +4): crosses fp
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"pointer leak to map value accepted (priv)",
     ProgType::kSocketFilter,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf);
       ProgramBuilder b;
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 1);
       b.Store(kSizeDw, kR0, kR10, 0);  // spills fp into the map
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"map ptr arithmetic rejected",
     ProgType::kSocketFilter,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf);
       ProgramBuilder b;
       b.LdMapFd(kR1, fd);
       b.Add(kR1, 8);  // CONST_PTR_TO_MAP + const
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"32-bit alu on pointer rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR1, kR10);
       b.Raw(Alu32Imm(kAluAdd, kR1, 4));
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"pointer minus pointer rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR1, kR10);
       b.Mov(kR2, kR10);
       b.Raw(AluReg(kAluSub, kR1, kR2));
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"scalar minus pointer rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR1, 100);
       b.Raw(AluReg(kAluSub, kR1, kR10));
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"scalar plus pointer commutes",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR1, -8);
       b.Raw(AluReg(kAluAdd, kR1, kR10));  // r1 = -8 + fp
       b.StoreImm(kSizeDw, kR1, 0, 3);
       b.Load(kSizeDw, kR0, kR10, -8);
       b.Ret();
       return b.Build();
     },
     0},
    {"mul on pointer rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR1, kR10);
       b.Alu(kAluMul, kR1, 2);
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"neg on pointer rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR1, kR10);
       b.Raw(Neg(kR1));
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"branch on uninitialized rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.JmpIf(kJmpJeq, kR5, 0, 0);
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"write through pkt_end rejected",
     ProgType::kXdp,
     [](Bpf&) {
       ProgramBuilder b(ProgType::kXdp);
       b.Load(kSizeDw, kR3, kR1, 8);
       b.Mov(kR2, 1);
       b.Store(kSizeB, kR3, kR2, 0);
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"packet arithmetic then recheck",
     ProgType::kXdp,
     [](Bpf&) {
       ProgramBuilder b(ProgType::kXdp);
       b.Mov(kR0, 0);
       b.Load(kSizeDw, kR2, kR1, 0);
       b.Load(kSizeDw, kR3, kR1, 8);
       b.Mov(kR4, kR2);
       b.Add(kR4, 10);
       b.JmpIfReg(kJmpJgt, kR4, kR3, 2);  // 10 bytes verified
       b.Load(kSizeH, kR0, kR2, 4);       // bytes [4,6): inside
       b.Load(kSizeW, kR0, kR2, 6);       // bytes [6,10): inside
       b.Ret();
       return b.Build();
     },
     0},
    {"packet access at range edge rejected",
     ProgType::kXdp,
     [](Bpf&) {
       ProgramBuilder b(ProgType::kXdp);
       b.Mov(kR0, 0);
       b.Load(kSizeDw, kR2, kR1, 0);
       b.Load(kSizeDw, kR3, kR1, 8);
       b.Mov(kR4, kR2);
       b.Add(kR4, 10);
       b.JmpIfReg(kJmpJgt, kR4, kR3, 1);
       b.Load(kSizeW, kR0, kR2, 7);  // bytes [7,11): one past range
       b.Ret();
       return b.Build();
     },
     -EACCES},
    {"div by possibly-zero register allowed",
     ProgType::kKprobe,
     [](Bpf&) {
       ProgramBuilder b(ProgType::kKprobe);
       b.Load(kSizeDw, kR6, kR1, 0);
       b.Mov(kR0, 100);
       b.Raw(AluReg(kAluDiv, kR0, kR6));  // runtime handles /0 as 0
       b.Ret();
       return b.Build();
     },
     0},
    {"exit with uninitialized r0 rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       Program prog = b.Build();
       prog.insns = {Exit()};
       return prog;
     },
     -EACCES},
    {"dead branch never verified",
     ProgType::kSocketFilter,
     [](Bpf&) {
       // `if 0 != 0` is never taken: the taken side may contain an insn that
       // would otherwise be rejected at runtime-state level (uninit read) but
       // is statically skipped. The kernel still requires reachability, so
       // reach it from a second, feasible path.
       ProgramBuilder b;
       b.Mov(kR6, 0);
       b.JmpIf(kJmpJne, kR6, 0, 1);   // never taken
       b.Mov(kR7, 1);                 // feasible path initializes r7
       b.Mov(kR0, 0);                 // join: reached with r7 maybe-uninit,
       b.Ret();                       // but r7 is never read: fine
       return b.Build();
     },
     0},
    {"both-const branch folds",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR6, 5);
       b.JmpIf(kJmpJgt, kR6, 3, 1);  // always taken
       b.Mov(kR0, kR9);              // dead: r9 uninit never checked?
       b.RetImm(0);
       return b.Build();
     },
     // The dead insn is still *reachable* in CFG terms (fallthrough), but
     // never walked with a state; our verifier folds the branch, so the
     // uninit read is not observed. Kernel behaviour matches (dead code is
     // pruned post-verification).
     0},
    {"jmp32 refinement applies to subregister only",
     ProgType::kKprobe,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf, 16);
       ProgramBuilder b(ProgType::kKprobe);
       b.Load(kSizeDw, kR6, kR1, 0);
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 4);
       b.Raw(Jmp32Imm(kJmpJgt, kR6, 8, 3));  // w6 <= 8, but high bits unknown!
       b.Add(kR0, kR6);                      // 64-bit add: unbounded
       b.Load(kSizeDw, kR0, kR0, 0),
       b.Jmp(0);
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"atomic on map value",
     ProgType::kSocketFilter,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf, 16);
       ProgramBuilder b;
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 2);
       b.Mov(kR1, 1);
       b.Raw(AtomicOp(kSizeDw, kR0, kR1, 8, kAtomicAdd));
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"atomic on ctx rejected",
     ProgType::kSocketFilter,
     [](Bpf&) {
       ProgramBuilder b;
       b.Mov(kR2, 1);
       b.Raw(AtomicOp(kSizeW, kR1, kR2, 8, kAtomicAdd));
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
    {"bounded loop over map value",
     ProgType::kSocketFilter,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf, 64);
       ProgramBuilder b;
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 6);
       b.Mov(kR6, 4);  // write 4 slots
       b.Mov(kR7, kR0);
       b.StoreImm(kSizeDw, kR7, 0, 1);
       b.Add(kR7, 8);
       b.Alu(kAluSub, kR6, 1);
       b.JmpIf(kJmpJne, kR6, 0, -4),
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"xor self is zero",
     ProgType::kSocketFilter,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf, 16);
       // r6 ^= r6 makes it const 0: usable as a safe offset.
       ProgramBuilder b;
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 4);
       b.Load(kSizeDw, kR6, kR0, 0);
       b.Raw(AluReg(kAluXor, kR6, kR6));
       b.Add(kR0, kR6);
       b.Load(kSizeDw, kR0, kR0, 8);
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"rsh bounds a full unknown",
     ProgType::kKprobe,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf, 16);
       // unknown >> 61 fits [0,7]: a safe map-value offset.
       ProgramBuilder b(ProgType::kKprobe);
       b.Load(kSizeDw, kR6, kR1, 0);
       b.Alu(kAluRsh, kR6, 61);
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 2);
       b.Add(kR0, kR6);
       b.Load(kSizeB, kR0, kR0, 0);
       b.RetImm(0);
       return b.Build();
     },
     0},
    {"signed bound alone insufficient for offset",
     ProgType::kKprobe,
     [](Bpf& bpf) {
       const int fd = ArrayMapFd(bpf, 16);
       ProgramBuilder b(ProgType::kKprobe);
       b.Load(kSizeDw, kR6, kR1, 0);
       b.Raw(AluReg(kAluArsh, kR6, kR6));  // arbitrary
       b.StoreImm(kSizeW, kR10, -4, 0);
       b.LdMapFd(kR1, fd);
       b.Mov(kR2, kR10);
       b.Add(kR2, -4);
       b.Call(kHelperMapLookupElem);
       b.JmpIf(kJmpJeq, kR0, 0, 2);
       b.Add(kR0, kR6);
       b.Load(kSizeB, kR0, kR0, 0);
       b.RetImm(0);
       return b.Build();
     },
     -EACCES},
};

INSTANTIATE_TEST_SUITE_P(Table, SelfTestSuite, ::testing::ValuesIn(kTests),
                         [](const ::testing::TestParamInfo<SelfTest>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace bpf
