// The BVF core: generators produce loadable inputs at the expected rates,
// campaigns are deterministic and leak-free of false positives, coverage
// feedback grows a corpus, and the oracle/triage tables behave.

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/fuzzer.h"
#include "src/core/oracle.h"
#include "src/core/structured_gen.h"
#include "src/runtime/bpf_syscall.h"

namespace bvf {
namespace {

using bpf::BugConfig;
using bpf::KernelVersion;
using bpf::ReportKind;

// ---- Generators ----

TEST(GeneratorTest, StructuredProgramsAreEncodable) {
  StructuredGenerator generator(KernelVersion::kBpfNext);
  bpf::Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const FuzzCase the_case = generator.Generate(rng);
    EXPECT_EQ(bpf::CheckEncoding(the_case.prog, nullptr), 0)
        << the_case.prog.Disassemble();
    EXPECT_GE(the_case.maps.size(), 2u);
    EXPECT_LE(the_case.prog.insns.size(), bpf::kMaxInsns);
  }
}

TEST(GeneratorTest, StructuredAcceptanceNearPaperRate) {
  StructuredGenerator generator(KernelVersion::kBpfNext);
  CampaignOptions options;
  options.iterations = 1500;
  options.seed = 11;
  options.coverage_points = 0;
  Fuzzer fuzzer(generator, options);
  const double rate = fuzzer.Run().AcceptanceRate();
  EXPECT_GT(rate, 0.35);  // paper: 49%
  EXPECT_LT(rate, 0.75);
}

TEST(GeneratorTest, SyzkallerAcceptanceLowerThanBvf) {
  SyzkallerGenerator syz(KernelVersion::kBpfNext);
  StructuredGenerator bvf_gen(KernelVersion::kBpfNext);
  CampaignOptions options;
  options.iterations = 1500;
  options.seed = 11;
  options.coverage_points = 0;
  Fuzzer syz_fuzzer(syz, options);
  Fuzzer bvf_fuzzer(bvf_gen, options);
  const double syz_rate = syz_fuzzer.Run().AcceptanceRate();
  const double bvf_rate = bvf_fuzzer.Run().AcceptanceRate();
  EXPECT_GT(syz_rate, 0.05);
  EXPECT_LT(syz_rate, 0.40);  // paper: 23.5%
  EXPECT_GT(bvf_rate, 1.5 * syz_rate);  // paper: >2x
}

TEST(GeneratorTest, BuzzerModesMatchPaperShape) {
  BuzzerGenerator alu_jmp(KernelVersion::kBpfNext);
  BuzzerGenerator random(KernelVersion::kBpfNext, BuzzerGenerator::Mode::kRandomBytes);
  CampaignOptions options;
  options.iterations = 1200;
  options.seed = 3;
  options.coverage_points = 0;
  Fuzzer f1(alu_jmp, options);
  const CampaignStats alu_stats = f1.Run();
  EXPECT_GT(alu_stats.AcceptanceRate(), 0.90);  // paper: ~97%
  EXPECT_GT(alu_stats.AluJmpShare(), 0.70);     // paper: >88% ALU+JMP
  Fuzzer f2(random, options);
  EXPECT_LT(f2.Run().AcceptanceRate(), 0.05);   // paper: ~1%
}

TEST(GeneratorTest, AblationKnobsChangeOutput) {
  StructuredGenOptions no_calls;
  no_calls.call_frames = false;
  StructuredGenerator generator(KernelVersion::kBpfNext, no_calls);
  bpf::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const FuzzCase the_case = generator.Generate(rng);
    for (const bpf::Insn& insn : the_case.prog.insns) {
      EXPECT_FALSE(insn.IsHelperCall()) << "call frame leaked through the ablation";
    }
  }
}

TEST(GeneratorTest, MutationPreservesEncodability) {
  StructuredGenerator generator(KernelVersion::kBpfNext);
  bpf::Rng rng(17);
  FuzzCase the_case = generator.Generate(rng);
  for (int i = 0; i < 200; ++i) {
    generator.Mutate(rng, the_case);
    ASSERT_EQ(bpf::CheckEncoding(the_case.prog, nullptr), 0)
        << the_case.prog.Disassemble();
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  StructuredGenerator generator(KernelVersion::kBpfNext);
  bpf::Rng rng_a(42);
  bpf::Rng rng_b(42);
  for (int i = 0; i < 20; ++i) {
    const FuzzCase a = generator.Generate(rng_a);
    const FuzzCase b = generator.Generate(rng_b);
    ASSERT_EQ(a.prog.insns.size(), b.prog.insns.size());
    for (size_t j = 0; j < a.prog.insns.size(); ++j) {
      ASSERT_EQ(a.prog.insns[j], b.prog.insns[j]);
    }
  }
}

// ---- Campaigns ----

TEST(FuzzerTest, CampaignIsDeterministic) {
  CampaignOptions options;
  options.iterations = 400;
  options.seed = 77;
  options.bugs = BugConfig::All();
  StructuredGenerator g1(options.version);
  StructuredGenerator g2(options.version);
  Fuzzer f1(g1, options);
  const CampaignStats a = f1.Run();
  Fuzzer f2(g2, options);
  const CampaignStats b = f2.Run();
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_EQ(a.final_coverage, b.final_coverage);
}

TEST(FuzzerTest, NoFindingsOnFixedKernel) {
  CampaignOptions options;
  options.iterations = 1200;
  options.seed = 123;
  options.bugs = BugConfig::None();
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  EXPECT_TRUE(stats.findings.empty())
      << stats.findings[0].signature << " | " << stats.findings[0].details;
}

TEST(FuzzerTest, FindsInjectedBugsQuickly) {
  CampaignOptions options;
  options.iterations = 2500;
  options.seed = 9;
  options.bugs = BugConfig::All();
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  EXPECT_GE(stats.findings.size(), 8u);
  int distinct = 0;
  bool seen[16] = {};
  for (const Finding& finding : stats.findings) {
    const int id = static_cast<int>(finding.triaged);
    if (finding.triaged != KnownBug::kUnknown && !seen[id]) {
      seen[id] = true;
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 7);
}

TEST(FuzzerTest, CoverageCurveIsMonotone) {
  CampaignOptions options;
  options.iterations = 960;
  options.seed = 4;
  options.coverage_points = 16;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  ASSERT_GE(stats.curve.size(), 15u);
  for (size_t i = 1; i < stats.curve.size(); ++i) {
    EXPECT_GE(stats.curve[i].covered, stats.curve[i - 1].covered);
  }
  EXPECT_EQ(stats.curve.back().covered, stats.final_coverage);
}

TEST(FuzzerTest, RejectErrnosAreTracked) {
  CampaignOptions options;
  options.iterations = 600;
  options.seed = 21;
  SyzkallerGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  uint64_t total = 0;
  for (const auto& [err, count] : stats.reject_errno) {
    EXPECT_GT(err, 0);
    total += count;
  }
  EXPECT_EQ(total, stats.rejected);
  EXPECT_GT(stats.reject_errno.count(EACCES), 0u);
}

// ---- Oracle / triage ----

TEST(OracleTest, IndicatorClassification) {
  bpf::ReportSink sink;
  sink.Report(ReportKind::kBpfAsanOob, "bpf_asan_load", "read of size 8 at 0x1 near object 'task_struct'");
  sink.Report(ReportKind::kLockdepRecursion, "bpf_task_storage_lock", "");
  const auto findings = ClassifyReports(sink, 0, 7);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].indicator, 1);
  EXPECT_EQ(findings[0].triaged, KnownBug::kBug2TaskStructBounds);
  EXPECT_EQ(findings[0].iteration, 7u);
  EXPECT_EQ(findings[1].indicator, 2);
  EXPECT_EQ(findings[1].triaged, KnownBug::kBug5ContentionBegin);
}

TEST(OracleTest, WatermarkSkipsOldReports) {
  bpf::ReportSink sink;
  sink.Report(ReportKind::kWarn, "old", "");
  const size_t mark = sink.Watermark();
  sink.Report(ReportKind::kPanic, "bpf_send_signal", "");
  const auto findings = ClassifyReports(sink, mark, 1);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].triaged, KnownBug::kBug6SendSignal);
}

TEST(OracleTest, TriageTable) {
  using R = bpf::KernelReport;
  EXPECT_EQ(TriageReport(R{ReportKind::kBpfAsanNullDeref, "bpf_asan_load",
                           "read of size 8 at 0x0000000000000000"}),
            KnownBug::kBug1NullnessPropagation);
  EXPECT_EQ(TriageReport(R{ReportKind::kBpfAsanNullDeref, "bpf_asan_load",
                           "read of size 8 at 0x0000000000000010"}),
            KnownBug::kCve2022_23222);
  EXPECT_EQ(TriageReport(R{ReportKind::kAluLimitViolation, "bpf_asan_alu", ""}),
            KnownBug::kBug3KfuncBacktrack);
  EXPECT_EQ(TriageReport(R{ReportKind::kLockdepInconsistent, "trace_printk_lock", ""}),
            KnownBug::kBug4TracePrintkRecursion);
  EXPECT_EQ(TriageReport(R{ReportKind::kLockdepInconsistent, "rq_lock", ""}),
            KnownBug::kBug10IrqWork);
  EXPECT_EQ(TriageReport(R{ReportKind::kKasanNullDeref, "bpf_dispatcher_xdp_func", ""}),
            KnownBug::kBug7DispatcherSync);
  EXPECT_EQ(TriageReport(R{ReportKind::kWarn, "bpf_prog_load", "kmemdup of 32768 failed"}),
            KnownBug::kBug8Kmemdup);
  EXPECT_EQ(TriageReport(R{ReportKind::kWarn, "xdp_do_generic", ""}),
            KnownBug::kBug11XdpOffload);
  EXPECT_EQ(TriageReport(R{ReportKind::kKasanOob, "htab_map_lookup_batch", ""}),
            KnownBug::kBug9BucketIteration);
  EXPECT_EQ(TriageReport(R{ReportKind::kPageFault, "bpf_prog_run", ""}),
            KnownBug::kUnknown);
}

TEST(OracleTest, KnownBugNamesAreDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= 12; ++i) {
    names.insert(KnownBugName(static_cast<KnownBug>(i)));
  }
  EXPECT_EQ(names.size(), 13u);
}

// ---- End-to-end soundness sweep ----

// Any accepted risky program on a fully fixed kernel must execute without a
// single kernel report: the verifier model is sound w.r.t. the runtime.
TEST(SoundnessSweep, AcceptedProgramsNeverMisbehaveOnFixedKernel) {
  for (const KernelVersion version :
       {KernelVersion::kV5_15, KernelVersion::kV6_1, KernelVersion::kBpfNext}) {
    CampaignOptions options;
    options.version = version;
    options.bugs = BugConfig::None();
    options.iterations = 800;
    options.seed = 31337;
    StructuredGenerator generator(version);
    Fuzzer fuzzer(generator, options);
    const CampaignStats stats = fuzzer.Run();
    EXPECT_TRUE(stats.findings.empty())
        << bpf::KernelVersionName(version) << ": " << stats.findings[0].signature << " | "
        << stats.findings[0].details;
  }
}

}  // namespace
}  // namespace bvf
