// Reproducer minimization: RemoveInsnPatched offset algebra and the greedy
// shrink loop against real injected-bug triggers.

#include <gtest/gtest.h>

#include "src/core/repro.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/builder.h"

namespace bvf {
namespace {

using namespace bpf;

TEST(RemoveInsnPatchedTest, ForwardJumpShrinks) {
  Program prog;
  prog.insns = {MovImm(kR0, 0), JmpImm(kJmpJeq, kR0, 0, 2), MovImm(kR1, 1), MovImm(kR2, 2),
                Exit()};
  RemoveInsnPatched(prog, 2);
  EXPECT_EQ(prog.insns.size(), 4u);
  EXPECT_EQ(prog.insns[1].off, 1);
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
}

TEST(RemoveInsnPatchedTest, JumpToRemovedLandsOnSuccessor) {
  Program prog;
  prog.insns = {MovImm(kR0, 0), JmpImm(kJmpJeq, kR0, 0, 1), MovImm(kR1, 1), Exit()};
  RemoveInsnPatched(prog, 2);  // the jump target itself
  EXPECT_EQ(prog.insns.size(), 3u);
  EXPECT_EQ(prog.insns[1].off, 0);  // now falls through to exit
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
}

TEST(RemoveInsnPatchedTest, LdImm64RemovedAsPair) {
  Program prog;
  prog.insns = {LdImm64Lo(kR1, 0, 7), LdImm64Hi(7), MovImm(kR0, 0), Exit()};
  RemoveInsnPatched(prog, 0);
  EXPECT_EQ(prog.insns.size(), 2u);
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
}

TEST(RemoveInsnPatchedTest, JumpIntoLdImm64HighSlotLandsOnSuccessor) {
  // The branch targets the *second* slot of a ld_imm64 pair. When the pair is
  // removed, that interior target must remap to the pair's successor — the
  // `t_pre > p && t_pre < p + w` clause — not to a stale mid-pair offset.
  Program prog;
  prog.insns = {MovImm(kR0, 0),       JmpImm(kJmpJeq, kR0, 0, 2), MovImm(kR1, 1),
                LdImm64Lo(kR2, 0, 9), LdImm64Hi(9),               MovImm(kR3, 3),
                Exit()};
  RemoveInsnPatched(prog, 3);  // drops both ld_imm64 slots (indices 3 and 4)
  ASSERT_EQ(prog.insns.size(), 5u);
  // Jump at index 1 used to target index 4 (the high slot); it must now land
  // on what was index 5 (MovImm kR3), i.e. index 3 after the 2-slot shift.
  EXPECT_EQ(prog.insns[1].off, 1);
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
}

TEST(RemoveInsnPatchedTest, BackEdgeShrinks) {
  Program prog;
  prog.insns = {MovImm(kR6, 3), MovImm(kR7, 0), AluImm(kAluSub, kR6, 1),
                JmpImm(kJmpJne, kR6, 0, -3), MovImm(kR0, 0), Exit()};
  RemoveInsnPatched(prog, 1);  // remove a body insn before the back edge
  EXPECT_EQ(prog.insns[2].off, -2);
  EXPECT_EQ(CheckEncoding(prog, nullptr), 0);
}

TEST(ExecuteCaseTest, ReportsSignatures) {
  // The Listing 2 (bug #1) trigger as a fuzz case.
  FuzzCase the_case;
  the_case.prog.type = ProgType::kKprobe;
  ProgramBuilder b(ProgType::kKprobe);
  b.LdBtfId(kR6, kBtfMmStruct);
  b.StoreImm(kSizeDw, kR10, -8, 7777);
  b.LdMapFd(kR1, 1);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  b.JmpIfReg(kJmpJne, kR0, kR6, 1);
  b.Load(kSizeDw, kR8, kR0, 0);
  b.RetImm(0);
  the_case.prog = b.Build();
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 8;
  def.value_size = 16;
  def.max_entries = 8;
  the_case.maps.push_back(def);

  CampaignOptions options;
  options.bugs.bug1_nullness_propagation = true;
  bool accepted = false;
  const auto signatures = ExecuteCase(the_case, options, &accepted);
  EXPECT_TRUE(accepted);
  EXPECT_GT(signatures.count("bpf-asan: null-ptr-deref in bpf_asan_load"), 0u);

  // On the fixed kernel the same case is rejected and silent.
  options.bugs = BugConfig::None();
  const auto clean = ExecuteCase(the_case, options, &accepted);
  EXPECT_FALSE(accepted);
  EXPECT_TRUE(clean.empty());
}

TEST(MinimizeTest, ShrinksNoisyTriggerToCore) {
  // The bug #1 trigger buried inside unrelated instructions.
  FuzzCase the_case;
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR7, 111);              // noise
  b.Alu(kAluAdd, kR7, 5);       // noise
  b.LdBtfId(kR6, kBtfMmStruct);
  b.StoreImm(kSizeDw, kR10, -16, 42);  // noise
  b.StoreImm(kSizeDw, kR10, -8, 7777);
  b.LdMapFd(kR1, 1);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  b.Mov(kR9, 3);                // noise
  b.JmpIfReg(kJmpJne, kR0, kR6, 1);
  b.Load(kSizeDw, kR8, kR0, 0);
  b.RetImm(0);
  the_case.prog = b.Build();
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 8;
  def.value_size = 16;
  def.max_entries = 8;
  the_case.maps.push_back(def);

  CampaignOptions options;
  options.bugs.bug1_nullness_propagation = true;
  const std::string signature = "bpf-asan: null-ptr-deref in bpf_asan_load";
  ASSERT_GT(ExecuteCase(the_case, options).count(signature), 0u);

  const MinimizeResult result = MinimizeCase(the_case, signature, options);
  EXPECT_LT(result.insns_after, result.insns_before);
  // The noise goes; the lookup + compare + deref chain must remain.
  EXPECT_LE(result.insns_after, result.insns_before - 4);
  EXPECT_GT(ExecuteCase(result.reduced, options).count(signature), 0u);
  EXPECT_GT(result.executions, 0);
}

TEST(MinimizeTest, RespectsExecutionBudgetMidFixpoint) {
  // Same trigger as NoiseShrinksAway, but with a budget far too small to reach
  // the fixpoint: minimization must stop mid-pass, never exceed the cap, and
  // still hand back a case that reproduces the signature.
  FuzzCase the_case;
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR7, 111);  // noise
  b.LdBtfId(kR6, kBtfMmStruct);
  b.StoreImm(kSizeDw, kR10, -8, 7777);
  b.LdMapFd(kR1, 1);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  b.Mov(kR9, 3);  // noise
  b.JmpIfReg(kJmpJne, kR0, kR6, 1);
  b.Load(kSizeDw, kR8, kR0, 0);
  b.RetImm(0);
  the_case.prog = b.Build();
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 8;
  def.value_size = 16;
  def.max_entries = 8;
  the_case.maps.push_back(def);

  CampaignOptions options;
  options.bugs.bug1_nullness_propagation = true;
  const std::string signature = "bpf-asan: null-ptr-deref in bpf_asan_load";
  ASSERT_GT(ExecuteCase(the_case, options).count(signature), 0u);

  const MinimizeResult result = MinimizeCase(the_case, signature, options, 3);
  EXPECT_LE(result.executions, 3);
  EXPECT_LE(result.insns_after, result.insns_before);
  EXPECT_GT(ExecuteCase(result.reduced, options).count(signature), 0u);

  // A larger budget keeps shrinking from where the small one stopped.
  const MinimizeResult full = MinimizeCase(the_case, signature, options);
  EXPECT_LE(full.insns_after, result.insns_after);
}

TEST(MinimizeTest, GeneratedTriggerShrinks) {
  // Find a triggering generated case, then minimize it.
  CampaignOptions options;
  options.bugs.bug2_task_struct_bounds = true;
  StructuredGenerator generator(options.version);
  bpf::Rng rng(2024);
  const std::string signature = "bpf-asan: out-of-bounds in bpf_asan_load";
  for (int i = 0; i < 4000; ++i) {
    const FuzzCase the_case = generator.Generate(rng);
    if (ExecuteCase(the_case, options).count(signature) == 0) {
      continue;
    }
    const MinimizeResult result = MinimizeCase(the_case, signature, options, 600);
    EXPECT_LE(result.insns_after, result.insns_before);
    EXPECT_GT(ExecuteCase(result.reduced, options).count(signature), 0u)
        << result.reduced.prog.Disassemble();
    return;
  }
  FAIL() << "no generated case triggered bug #2 within the search budget";
}

}  // namespace
}  // namespace bvf
