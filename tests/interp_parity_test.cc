// Differential parity gate for the execution tiers (DESIGN.md §10, §14):
// every observable of an execution — ExecResult (r0, errno, insns_executed,
// abort_reason), kernel reports, sanitizer stats, coverage, and ultimately
// the campaign StatsDigest — must be bit-identical across all three engines
// (the legacy instruction-at-a-time interpreter, the decoded micro-op engine,
// and the x86-64 JIT tier), for handwritten edge programs, injected-bug
// repros, generated program sweeps, and full serial/parallel campaigns. Also
// locks down the decode and JIT caches' determinism (job-count-invariant
// hit/miss/evict counters, FIFO eviction, the shared_ptr lifetime rule), the
// JIT's graceful degradation to decoded, and the JIT differential oracle
// (indicator #5) catching a deliberately injected miscompile.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/fuzzer.h"
#include "src/core/parallel.h"
#include "src/core/structured_gen.h"
#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/jit_prog.h"
#include "src/runtime/verdict_cache.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace bvf {
namespace {

using bpf::BugConfig;
using bpf::Insn;
using bpf::kR0;
using bpf::kR1;
using bpf::kR2;
using bpf::kR3;
using bpf::kR4;
using bpf::kR6;
using bpf::kR7;
using bpf::kR8;
using bpf::kR10;
using bpf::Kernel;
using bpf::KernelVersion;
using bpf::MapDef;
using bpf::MapType;
using bpf::Program;
using bpf::ProgramBuilder;
using bpf::ProgType;

// Everything one engine's run of a program exposes to the rest of the system.
struct Observation {
  int fd = 0;
  std::string log;
  bpf::ExecResult exec;
  std::vector<std::string> reports;
  SanitizerStats san;
};

struct RunSpec {
  bool sanitize = false;
  int repeat = 1;
  uint32_t pkt_len = 64;
  uint64_t seed = 1;
  bpf::ExecLimits limits;
  BugConfig bugs = BugConfig::All();
  // Builds the program against the freshly booted facade (so it can create
  // maps and reference their fds); called identically for both engines.
  std::function<Program(bpf::Bpf&)> make_prog;
};

Observation Observe(const RunSpec& spec, bpf::ExecEngine engine) {
  Kernel kernel(KernelVersion::kBpfNext, spec.bugs);
  bpf::Bpf facade(kernel);
  facade.set_exec_engine(engine);
  facade.set_exec_limits(spec.limits);
  Sanitizer sanitizer;
  if (spec.sanitize) {
    bpf::BpfAsan::Register(kernel);
    facade.set_instrument(sanitizer.Hook());
  }
  const Program prog = spec.make_prog(facade);

  Observation obs;
  bpf::VerifierResult result;
  obs.fd = facade.ProgLoad(prog, &result);
  obs.log = result.log;
  if (obs.fd > 0) {
    obs.exec = spec.repeat > 1
                   ? facade.ProgTestRunRepeat(obs.fd, spec.repeat, spec.pkt_len, spec.seed)
                   : facade.ProgTestRun(obs.fd, spec.pkt_len, spec.seed);
  }
  for (const bpf::KernelReport& report : kernel.reports().reports()) {
    obs.reports.push_back(std::string(bpf::ReportKindName(report.kind)) + ": " +
                          report.title + " | " + report.details);
  }
  obs.san = sanitizer.stats();
  return obs;
}

void ExpectPairParity(const Observation& a, const Observation& b, const char* what,
                      const char* leg) {
  EXPECT_EQ(a.fd, b.fd) << what << " [" << leg << "]";
  EXPECT_EQ(a.exec.r0, b.exec.r0) << what << " [" << leg << "]";
  EXPECT_EQ(a.exec.err, b.exec.err) << what << " [" << leg << "]";
  EXPECT_EQ(a.exec.insns_executed, b.exec.insns_executed) << what << " [" << leg << "]";
  EXPECT_EQ(a.exec.abort_reason, b.exec.abort_reason) << what << " [" << leg << "]";
  EXPECT_EQ(a.reports, b.reports) << what << " [" << leg << "]";
  EXPECT_EQ(a.san.programs, b.san.programs) << what << " [" << leg << "]";
  EXPECT_EQ(a.san.insns_before, b.san.insns_before) << what << " [" << leg << "]";
  EXPECT_EQ(a.san.insns_after, b.san.insns_after) << what << " [" << leg << "]";
  EXPECT_EQ(a.san.mem_sites, b.san.mem_sites) << what << " [" << leg << "]";
  EXPECT_EQ(a.san.alu_sites, b.san.alu_sites) << what << " [" << leg << "]";
}

// Three-way differential: the decoded engine is the reference; the legacy
// interpreter and the JIT tier must both match it on every observable.
void ExpectParity(const RunSpec& spec, const char* what) {
  const Observation decoded = Observe(spec, bpf::ExecEngine::kDecoded);
  const Observation legacy = Observe(spec, bpf::ExecEngine::kLegacy);
  ExpectPairParity(legacy, decoded, what, "legacy-vs-decoded");
  if (bpf::JitAvailable()) {
    const Observation jit = Observe(spec, bpf::ExecEngine::kJit);
    ExpectPairParity(jit, decoded, what, "jit-vs-decoded");
  }
}

RunSpec Spec(Program prog) {
  RunSpec spec;
  spec.make_prog = [prog = std::move(prog)](bpf::Bpf&) { return prog; };
  return spec;
}

// ---- Handwritten edge programs ----

TEST(InterpParityTest, AluEdgeSemantics) {
  // Masked shifts, div/mod by zero, 32-bit truncation, bswap widths — the
  // semantics audited against Linux in tests/interpreter_test.cc, here run
  // through both engines.
  ProgramBuilder b;
  b.LdImm64(kR6, 0x1122334455667788ull);
  b.Mov(kR1, 64);
  b.Alu(bpf::kAluLsh, kR6, kR1);       // shift masked &63 -> unchanged
  b.LdImm64(kR7, 0x100000005ull);
  b.Mov(kR2, 0);
  b.Raw(bpf::Alu32Reg(bpf::kAluMod, kR7, kR2));  // mod32 by 0 keeps truncated dst
  b.Raw(bpf::Alu32Reg(bpf::kAluDiv, kR6, kR2));  // div32 by 0 zeroes dst
  b.Mov(kR0, kR7);
  b.Ret();
  ExpectParity(Spec(b.Build()), "alu edges");
}

TEST(InterpParityTest, ByteSwapAllWidths) {
  ProgramBuilder b;
  b.LdImm64(kR0, 0x0102030405060708ull);
  for (const int width : {16, 32, 64, 8 /* invalid: engine-defined no-op */}) {
    Insn swap;
    swap.opcode = bpf::kClassAlu | bpf::kAluEnd | 0x08;  // to_be
    swap.dst = kR0;
    swap.imm = width;
    b.Raw(swap);
  }
  Insn to_le;
  to_le.opcode = bpf::kClassAlu | bpf::kAluEnd;
  to_le.dst = kR0;
  to_le.imm = 8;  // invalid width: legacy masks to 0xff
  b.Raw(to_le);
  b.Ret();
  ExpectParity(Spec(b.Build()), "bswap widths");
}

TEST(InterpParityTest, JumpsSignedUnsigned32And64) {
  ProgramBuilder b;
  b.LdImm64(kR6, 0x100000005ull);
  b.Mov(kR0, 0);
  b.Raw(bpf::Jmp32Imm(bpf::kJmpJlt, kR6, 10, 1));  // wr6 == 5 < 10: taken
  b.Ret();
  b.Mov(kR1, -5);
  b.JmpIf(bpf::kJmpJslt, kR1, 3, 1);               // signed: taken
  b.Ret();
  b.JmpIfReg(bpf::kJmpJgt, kR6, kR1, 1);           // unsigned 64: r1 huge, not taken
  b.RetImm(7);
  ExpectParity(Spec(b.Build()), "jumps");
}

TEST(InterpParityTest, AtomicsAllOps) {
  for (const uint8_t size : {bpf::kSizeW, bpf::kSizeDw}) {
    ProgramBuilder b;
    b.StoreImm(bpf::kSizeDw, kR10, -8, 0);
    b.StoreImm(size, kR10, -8, 0x0f);
    for (const int32_t op : {bpf::kAtomicAdd, bpf::kAtomicOr, bpf::kAtomicAnd,
                             bpf::kAtomicXor, bpf::kAtomicAdd | bpf::kAtomicFetch,
                             bpf::kAtomicXor | bpf::kAtomicFetch}) {
      b.Mov(kR1, 0x35);
      b.Raw(bpf::AtomicOp(size, kR10, kR1, -8, op));
    }
    b.Mov(kR1, 9);
    b.Raw(bpf::AtomicOp(size, kR10, kR1, -8, bpf::kAtomicXchg));
    b.Mov(kR0, kR1);  // old value
    b.Mov(kR2, 33);
    b.Raw(bpf::AtomicOp(size, kR10, kR2, -8, bpf::kAtomicCmpXchg));
    b.Load(size, kR3, kR10, -8);
    b.Alu(bpf::kAluAdd, kR0, kR3);
    b.Ret();
    ExpectParity(Spec(b.Build()), size == bpf::kSizeW ? "atomics w" : "atomics dw");
  }
}

TEST(InterpParityTest, SubprogramsAndHelperClobber) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR6, 7);
  b.Mov(kR1, 3);
  b.Raw(bpf::CallPseudoFunc(4));  // sub at insn 7
  b.Alu(bpf::kAluAdd, kR0, kR6);
  b.Call(bpf::kHelperKtimeGetNs);  // clobbers r1-r5 identically in both engines
  b.Mov(kR0, kR6);
  b.Ret();
  // sub: own stack slot, callee-saved restore.
  b.StoreImm(bpf::kSizeDw, kR10, -8, 1);
  b.Mov(kR6, 99);
  b.Mov(kR0, kR1);
  b.Ret();
  ExpectParity(Spec(b.Build()), "subprog + clobber");
}

TEST(InterpParityTest, RunawayLoopTripsBudgetAtSameStep) {
  ProgramBuilder b;
  b.Mov(kR6, 1 << 20);
  b.Mov(kR0, 0);
  b.Alu(bpf::kAluSub, kR6, 1);
  b.JmpIf(bpf::kJmpJne, kR6, 0, -2);
  b.Ret();
  RunSpec spec = Spec(b.Build());
  spec.limits.step_budget = 777;  // trip mid-loop; insns_executed must match
  ExpectParity(spec, "step budget");
}

TEST(InterpParityTest, SanitizedMapValueAccess) {
  RunSpec spec;
  spec.sanitize = true;
  spec.make_prog = [](bpf::Bpf& facade) {
    MapDef def;
    def.type = MapType::kHash;
    def.key_size = 4;
    def.value_size = 8;
    def.max_entries = 4;
    const int map_fd = facade.MapCreate(def);
    ProgramBuilder b(ProgType::kKprobe);
    b.StoreImm(bpf::kSizeW, kR10, -4, 5);
    b.StoreImm(bpf::kSizeDw, kR10, -16, 777);
    b.LdMapFd(kR1, map_fd);
    b.Mov(kR2, kR10);
    b.Add(kR2, -4);
    b.Mov(kR3, kR10);
    b.Add(kR3, -16);
    b.Mov(kR4, 0);
    b.Call(bpf::kHelperMapUpdateElem);
    b.LdMapFd(kR1, map_fd);
    b.Mov(kR2, kR10);
    b.Add(kR2, -4);
    b.Call(bpf::kHelperMapLookupElem);
    b.JmpIf(bpf::kJmpJeq, kR0, 0, 2);
    b.StoreImm(bpf::kSizeW, kR0, 0, 42);  // rewritten to bpf_asan_store
    b.Load(bpf::kSizeDw, kR0, kR0, 0);    // rewritten to bpf_asan_load
    b.Ret();
    return b.Build();
  };
  ExpectParity(spec, "sanitized map access");
}

TEST(InterpParityTest, SanitizedPacketAccess) {
  RunSpec spec;
  spec.sanitize = true;
  spec.make_prog = [](bpf::Bpf&) {
    ProgramBuilder b(ProgType::kXdp);
    b.Mov(kR0, 0);
    b.Load(bpf::kSizeDw, kR2, kR1, 0);
    b.Load(bpf::kSizeDw, kR3, kR1, 8);
    b.Mov(kR4, kR2);
    b.Add(kR4, 4);
    b.JmpIfReg(bpf::kJmpJgt, kR4, kR3, 1);
    b.Load(bpf::kSizeW, kR0, kR2, 0);
    b.Ret();
    return b.Build();
  };
  spec.repeat = 8;
  ExpectParity(spec, "sanitized packet access");
}

TEST(InterpParityTest, InjectedBug1NullDerefReproducesIdentically) {
  // The Listing-2 nullness-propagation repro: the buggy verifier accepts a
  // NULL dereference; sanitation catches it at runtime. Reports (and the
  // BTF-load null path feeding it) must match across engines.
  RunSpec spec;
  spec.sanitize = true;
  spec.make_prog = [](bpf::Bpf& facade) {
    MapDef def;
    def.type = MapType::kHash;
    def.key_size = 8;
    def.value_size = 8;
    def.max_entries = 4;
    const int hash_fd = facade.MapCreate(def);
    ProgramBuilder b(ProgType::kKprobe);
    b.LdBtfId(kR6, bpf::kBtfMmStruct);
    b.StoreImm(bpf::kSizeDw, kR10, -8, 7777);  // never-inserted key
    b.LdMapFd(kR1, hash_fd);
    b.Mov(kR2, kR10);
    b.Add(kR2, -8);
    b.Call(bpf::kHelperMapLookupElem);
    b.JmpIfReg(bpf::kJmpJne, kR0, kR6, 1);
    b.Load(bpf::kSizeDw, kR8, kR0, 0);
    b.RetImm(0);
    return b.Build();
  };
  ExpectParity(spec, "bug1 repro");
}

TEST(InterpParityTest, RepeatedTestRunAccumulatesIdenticalInsnCounts) {
  ProgramBuilder b;
  b.Mov(kR6, 100);
  b.Mov(kR0, 0);
  b.Alu(bpf::kAluAdd, kR0, kR6);
  b.Alu(bpf::kAluSub, kR6, 1);
  b.JmpIf(bpf::kJmpJne, kR6, 0, -3);
  b.Ret();
  RunSpec spec = Spec(b.Build());
  spec.repeat = 64;
  ExpectParity(spec, "repeat=64");
}

// ---- Generated sweep: structured programs, sanitized, all bugs injected ----

TEST(InterpParityTest, GeneratedProgramSweep) {
  StructuredGenerator generator(KernelVersion::kBpfNext);
  bpf::Rng rng(1234);
  for (int i = 0; i < 150; ++i) {
    FuzzCase the_case = generator.Generate(rng);
    RunSpec spec;
    spec.sanitize = true;
    spec.seed = static_cast<uint64_t>(i);
    spec.make_prog = [&the_case](bpf::Bpf& facade) {
      for (const MapDef& def : the_case.maps) {
        facade.MapCreate(def);
      }
      return the_case.prog;
    };
    ExpectParity(spec, "generated sweep");
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at generated program " << i;
    }
  }
}

// ---- Campaign-level digest parity ----

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.iterations = 200;
  options.seed = 17;
  options.bugs = BugConfig::All();
  options.fault.probability = 0.05;
  options.confirm_runs = 1;
  options.epoch_len = 32;
  return options;
}

CampaignStats RunSerial(const CampaignOptions& options) {
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

CampaignStats RunParallel(const CampaignOptions& options) {
  StructuredGenerator generator(options.version);
  ParallelFuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

TEST(InterpParityTest, SerialCampaignDigestIdenticalAcrossEngines) {
  CampaignOptions options = SmallCampaign();
  options.interp_engine = bpf::ExecEngine::kLegacy;
  const CampaignStats legacy = RunSerial(options);
  options.interp_engine = bpf::ExecEngine::kDecoded;
  const CampaignStats decoded = RunSerial(options);
  // The jit leg is unconditional: on hosts without a working JIT the engine
  // downgrades to decoded, which must still produce the identical digest.
  options.interp_engine = bpf::ExecEngine::kJit;
  const CampaignStats jit = RunSerial(options);
  EXPECT_EQ(StatsDigest(legacy), StatsDigest(decoded));
  EXPECT_EQ(StatsDigest(jit), StatsDigest(decoded));
  EXPECT_EQ(legacy.findings.size(), decoded.findings.size());
  EXPECT_EQ(jit.findings.size(), decoded.findings.size());
  EXPECT_EQ(legacy.sanitizer.mem_sites, decoded.sanitizer.mem_sites);
  EXPECT_EQ(jit.sanitizer.mem_sites, decoded.sanitizer.mem_sites);
  // Only the decoded and jit runs exercise the decode cache; only the jit
  // run (on a jit-capable host) exercises the jit cache.
  EXPECT_EQ(legacy.decode_cache_hits + legacy.decode_cache_misses, 0u);
  EXPECT_GT(decoded.decode_cache_misses, 0u);
  EXPECT_GT(jit.decode_cache_misses, 0u);
  EXPECT_EQ(decoded.jit_cache_hits + decoded.jit_cache_misses, 0u);
  if (bpf::JitAvailable()) {
    EXPECT_GT(jit.jit_cache_misses, 0u);
  }
}

TEST(InterpParityTest, ParallelCampaignDigestIdenticalAcrossEngines) {
  CampaignOptions options = SmallCampaign();
  options.jobs = 2;
  options.interp_engine = bpf::ExecEngine::kLegacy;
  const CampaignStats legacy = RunParallel(options);
  options.interp_engine = bpf::ExecEngine::kDecoded;
  const CampaignStats decoded = RunParallel(options);
  options.interp_engine = bpf::ExecEngine::kJit;
  const CampaignStats jit = RunParallel(options);
  EXPECT_EQ(StatsDigest(legacy), StatsDigest(decoded));
  EXPECT_EQ(StatsDigest(jit), StatsDigest(decoded));
}

TEST(InterpParityTest, SanitizeOffCampaignAlsoDigestIdentical) {
  CampaignOptions options = SmallCampaign();
  options.sanitize = false;
  options.audit_state = false;
  options.interp_engine = bpf::ExecEngine::kLegacy;
  const CampaignStats legacy = RunSerial(options);
  options.interp_engine = bpf::ExecEngine::kDecoded;
  const CampaignStats decoded = RunSerial(options);
  options.interp_engine = bpf::ExecEngine::kJit;
  const CampaignStats jit = RunSerial(options);
  EXPECT_EQ(StatsDigest(legacy), StatsDigest(decoded));
  EXPECT_EQ(StatsDigest(jit), StatsDigest(decoded));
}

// ---- Decode cache determinism ----

TEST(DecodeCacheTest, CountersAreJobCountInvariant) {
  CampaignOptions options = SmallCampaign();
  options.jobs = 1;
  const CampaignStats one = RunParallel(options);
  options.jobs = 3;
  const CampaignStats three = RunParallel(options);
  EXPECT_EQ(StatsDigest(one), StatsDigest(three));
  EXPECT_EQ(one.decode_cache_hits, three.decode_cache_hits);
  EXPECT_EQ(one.decode_cache_misses, three.decode_cache_misses);
  EXPECT_EQ(one.decode_cache_evictions, three.decode_cache_evictions);
}

TEST(DecodeCacheTest, CountersSurviveCheckpointResume) {
  const std::string path = std::string(::testing::TempDir()) + "/dcache_resume.ckpt";
  CampaignOptions options = SmallCampaign();
  options.jobs = 2;

  const CampaignStats full = RunParallel(options);

  CampaignOptions first_leg = options;
  first_leg.checkpoint_path = path;
  first_leg.stop_after = 96;
  RunParallel(first_leg);

  CampaignOptions second_leg = options;
  second_leg.resume_path = path;
  const CampaignStats resumed = RunParallel(second_leg);
  ASSERT_TRUE(resumed.resume_error.empty()) << resumed.resume_error;
  EXPECT_EQ(StatsDigest(resumed), StatsDigest(full));
  // The decode cache itself restarts empty after resume, so the second leg
  // re-misses programs the first leg had cached: totals are >= the
  // uninterrupted run's, and hits+misses (loads) stay conserved.
  EXPECT_EQ(resumed.decode_cache_hits + resumed.decode_cache_misses,
            full.decode_cache_hits + full.decode_cache_misses);
  EXPECT_GE(resumed.decode_cache_misses, full.decode_cache_misses);
  std::remove(path.c_str());
}

TEST(DecodeCacheTest, FifoEvictionIsDeterministicAndBounded) {
  bpf::DecodeCache cache(/*max_entries=*/2);
  bpf::DecodeCacheShard shard(cache, /*immediate=*/true);
  const auto decoded = std::make_shared<const bpf::DecodedProgram>();
  const bpf::VerdictKey a{1, 1};
  const bpf::VerdictKey b{2, 2};
  const bpf::VerdictKey c{3, 3};
  shard.Insert(a, decoded);
  shard.Insert(b, decoded);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  shard.Insert(c, decoded);  // evicts a (oldest commit)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
}

TEST(DecodeCacheTest, EvictedEntryStillRunsWhileLoaded) {
  // A program loaded from the cache holds a shared_ptr; evicting its cache
  // entry must not invalidate the running program.
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  bpf::Bpf facade(kernel);
  bpf::DecodeCache cache(/*max_entries=*/1);
  bpf::DecodeCacheShard shard(cache, /*immediate=*/true);
  facade.set_decode_cache(&shard);

  ProgramBuilder first;
  first.RetImm(41);
  const int fd = facade.ProgLoad(first.Build());
  ASSERT_GT(fd, 0);

  ProgramBuilder second;
  second.RetImm(42);
  const int fd2 = facade.ProgLoad(second.Build());  // evicts the first entry
  ASSERT_GT(fd2, 0);
  EXPECT_EQ(cache.evictions(), 1u);

  EXPECT_EQ(facade.ProgTestRun(fd).r0, 41u);
  EXPECT_EQ(facade.ProgTestRun(fd2).r0, 42u);
}

TEST(DecodeCacheTest, CacheHitProducesIdenticalExecution) {
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  bpf::Bpf facade(kernel);
  bpf::DecodeCache cache;
  bpf::DecodeCacheShard shard(cache, /*immediate=*/true);
  facade.set_decode_cache(&shard);

  ProgramBuilder b;
  b.Mov(kR6, 5);
  b.Mov(kR0, 0);
  b.Alu(bpf::kAluAdd, kR0, kR6);
  b.Alu(bpf::kAluSub, kR6, 1);
  b.JmpIf(bpf::kJmpJne, kR6, 0, -3);
  b.Ret();
  const Program prog = b.Build();

  const int miss_fd = facade.ProgLoad(prog);
  ASSERT_GT(miss_fd, 0);
  const int hit_fd = facade.ProgLoad(prog);
  ASSERT_GT(hit_fd, 0);
  EXPECT_EQ(shard.TakeMisses(), 1u);
  EXPECT_EQ(shard.TakeHits(), 1u);
  // Both fds share one DecodedProgram; executions are interchangeable.
  const bpf::ExecResult a = facade.ProgTestRun(miss_fd);
  const bpf::ExecResult h = facade.ProgTestRun(hit_fd);
  EXPECT_EQ(a.r0, h.r0);
  EXPECT_EQ(a.insns_executed, h.insns_executed);
  EXPECT_EQ(facade.FindProg(miss_fd)->decoded.get(), facade.FindProg(hit_fd)->decoded.get());
}

// ---- JIT code cache determinism (same discipline as the decode cache) ----

TEST(JitCacheTest, CountersAreJobCountInvariant) {
  CampaignOptions options = SmallCampaign();
  options.interp_engine = bpf::ExecEngine::kJit;
  options.jobs = 1;
  const CampaignStats one = RunParallel(options);
  options.jobs = 3;
  const CampaignStats three = RunParallel(options);
  EXPECT_EQ(StatsDigest(one), StatsDigest(three));
  EXPECT_EQ(one.jit_cache_hits, three.jit_cache_hits);
  EXPECT_EQ(one.jit_cache_misses, three.jit_cache_misses);
  EXPECT_EQ(one.jit_cache_evictions, three.jit_cache_evictions);
  if (bpf::JitAvailable()) {
    EXPECT_GT(one.jit_cache_misses, 0u);
  }
}

TEST(JitCacheTest, CountersSurviveCheckpointResume) {
  const std::string path = std::string(::testing::TempDir()) + "/jcache_resume.ckpt";
  CampaignOptions options = SmallCampaign();
  options.interp_engine = bpf::ExecEngine::kJit;
  options.jobs = 2;

  const CampaignStats full = RunParallel(options);

  CampaignOptions first_leg = options;
  first_leg.checkpoint_path = path;
  first_leg.stop_after = 96;
  RunParallel(first_leg);

  CampaignOptions second_leg = options;
  second_leg.resume_path = path;
  const CampaignStats resumed = RunParallel(second_leg);
  ASSERT_TRUE(resumed.resume_error.empty()) << resumed.resume_error;
  EXPECT_EQ(StatsDigest(resumed), StatsDigest(full));
  // Like the decode cache, the jit cache restarts empty after resume: loads
  // (hits+misses) are conserved, misses can only grow.
  EXPECT_EQ(resumed.jit_cache_hits + resumed.jit_cache_misses,
            full.jit_cache_hits + full.jit_cache_misses);
  EXPECT_GE(resumed.jit_cache_misses, full.jit_cache_misses);
  std::remove(path.c_str());
}

TEST(JitCacheTest, FifoEvictionIsDeterministicAndBounded) {
  bpf::JitCache cache(/*max_entries=*/2);
  bpf::JitCacheShard shard(cache, /*immediate=*/true);
  const auto blob = std::make_shared<const bpf::JitProgram>();
  const bpf::VerdictKey a{1, 1};
  const bpf::VerdictKey b{2, 2};
  const bpf::VerdictKey c{3, 3};
  shard.Insert(a, blob);
  shard.Insert(b, blob);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  shard.Insert(c, blob);  // evicts a (oldest commit)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
}

TEST(JitCacheTest, EvictedEntryStillRunsWhileLoaded) {
  if (!bpf::JitAvailable()) {
    GTEST_SKIP() << "jit tier unavailable on this host";
  }
  // A program loaded from the cache holds a shared_ptr to the code blob;
  // evicting its cache entry must not unmap code a live fd still runs.
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  bpf::Bpf facade(kernel);
  facade.set_exec_engine(bpf::ExecEngine::kJit);
  bpf::JitCache cache(/*max_entries=*/1);
  bpf::JitCacheShard shard(cache, /*immediate=*/true);
  facade.set_jit_cache(&shard);

  ProgramBuilder first;
  first.RetImm(41);
  const int fd = facade.ProgLoad(first.Build());
  ASSERT_GT(fd, 0);

  ProgramBuilder second;
  second.RetImm(42);
  const int fd2 = facade.ProgLoad(second.Build());  // evicts the first entry
  ASSERT_GT(fd2, 0);
  EXPECT_EQ(cache.evictions(), 1u);

  EXPECT_EQ(facade.ProgTestRun(fd).r0, 41u);
  EXPECT_EQ(facade.ProgTestRun(fd2).r0, 42u);
}

TEST(JitCacheTest, CacheHitSharesOneCodeBlob) {
  if (!bpf::JitAvailable()) {
    GTEST_SKIP() << "jit tier unavailable on this host";
  }
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  bpf::Bpf facade(kernel);
  facade.set_exec_engine(bpf::ExecEngine::kJit);
  bpf::JitCache cache;
  bpf::JitCacheShard shard(cache, /*immediate=*/true);
  facade.set_jit_cache(&shard);

  ProgramBuilder b;
  b.Mov(kR6, 5);
  b.Mov(kR0, 0);
  b.Alu(bpf::kAluAdd, kR0, kR6);
  b.Alu(bpf::kAluSub, kR6, 1);
  b.JmpIf(bpf::kJmpJne, kR6, 0, -3);
  b.Ret();
  const Program prog = b.Build();

  const int miss_fd = facade.ProgLoad(prog);
  ASSERT_GT(miss_fd, 0);
  const int hit_fd = facade.ProgLoad(prog);
  ASSERT_GT(hit_fd, 0);
  EXPECT_EQ(shard.TakeMisses(), 1u);
  EXPECT_EQ(shard.TakeHits(), 1u);
  // Both fds share one compiled blob; executions are interchangeable.
  const bpf::ExecResult a = facade.ProgTestRun(miss_fd);
  const bpf::ExecResult h = facade.ProgTestRun(hit_fd);
  EXPECT_EQ(a.r0, h.r0);
  EXPECT_EQ(a.insns_executed, h.insns_executed);
  EXPECT_EQ(facade.FindProg(miss_fd)->jit.get(), facade.FindProg(hit_fd)->jit.get());
}

// ---- JIT engine selection and the differential oracle ----

TEST(JitEngineTest, DowngradesGracefullyWhenUnavailable) {
  bpf::SetJitForceUnavailableForTest(true);
  {
    // Selecting the jit tier on a host without one must silently (modulo a
    // one-line stderr warning) behave exactly like the decoded engine.
    Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
    bpf::Bpf facade(kernel);
    facade.set_exec_engine(bpf::ExecEngine::kJit);
    EXPECT_EQ(facade.exec_engine(), bpf::ExecEngine::kDecoded);
    ProgramBuilder b;
    b.RetImm(7);
    const int fd = facade.ProgLoad(b.Build());
    ASSERT_GT(fd, 0);
    EXPECT_EQ(facade.ProgTestRun(fd).r0, 7u);
  }
  // Campaign-level: a --interp=jit campaign on a jit-less host runs on the
  // decoded engine and produces the identical digest.
  CampaignOptions options = SmallCampaign();
  options.interp_engine = bpf::ExecEngine::kJit;
  const CampaignStats downgraded = RunSerial(options);
  bpf::SetJitForceUnavailableForTest(false);
  options.interp_engine = bpf::ExecEngine::kDecoded;
  const CampaignStats decoded = RunSerial(options);
  EXPECT_EQ(StatsDigest(downgraded), StatsDigest(decoded));
  // The downgraded run never touched the jit cache.
  EXPECT_EQ(downgraded.jit_cache_hits + downgraded.jit_cache_misses, 0u);
}

// Builds the one program shape SetJitMiscompileForTest deliberately
// miscompiles: a 64-bit `add r0, 0x7eef` (the jit computes +0x7ef0).
FuzzCase MiscompileBaitCase() {
  FuzzCase the_case;
  ProgramBuilder b;
  b.Mov(kR0, 1);
  b.Alu(bpf::kAluAdd, kR0, 0x7eef);
  b.Ret();
  the_case.prog = b.Build();
  the_case.test_runs = 1;
  return the_case;
}

TEST(JitEngineTest, OracleCatchesInjectedMiscompile) {
  if (!bpf::JitAvailable()) {
    GTEST_SKIP() << "jit tier unavailable on this host";
  }
  bpf::SetJitMiscompileForTest(true);
  CampaignOptions options = SmallCampaign();
  options.jit_oracle = true;
  options.fault.probability = 0.0;
  options.confirm_runs = 3;
  CaseRunner runner(options);
  const FuzzCase the_case = MiscompileBaitCase();
  CaseRunner::CaseResult result = runner.RunOne(the_case, /*iteration=*/1);
  EXPECT_EQ(result.outcome, CaseOutcome::kJitDivergence);
  Finding* divergence = nullptr;
  for (Finding& finding : result.findings) {
    if (finding.indicator == 5) {
      divergence = &finding;
    }
  }
  ASSERT_NE(divergence, nullptr) << "no indicator-5 finding recorded";
  EXPECT_EQ(divergence->kind, bpf::ReportKind::kJitDivergence);
  EXPECT_NE(divergence->signature.find("jit"), std::string::npos);
  // The miscompile is deterministic, so confirmation replays must hit it
  // every time.
  runner.ConfirmFinding(*divergence, the_case, /*iteration=*/1, result.fault_log);
  EXPECT_EQ(divergence->confirmation, Confirmation::kDeterministic);
  EXPECT_EQ(divergence->confirm_hits, divergence->confirm_runs);
  bpf::SetJitMiscompileForTest(false);

  // Same case with correct codegen: the oracle stays silent.
  CaseRunner clean_runner(options);
  CaseRunner::CaseResult clean = clean_runner.RunOne(the_case, /*iteration=*/1);
  EXPECT_NE(clean.outcome, CaseOutcome::kJitDivergence);
  for (const Finding& finding : clean.findings) {
    EXPECT_NE(finding.indicator, 5);
  }
}

TEST(JitEngineTest, OracleIsNoOpWhenJitUnavailable) {
  bpf::SetJitForceUnavailableForTest(true);
  bpf::SetJitMiscompileForTest(true);  // would diverge if the oracle ran
  CampaignOptions options = SmallCampaign();
  options.jit_oracle = true;
  options.fault.probability = 0.0;
  CaseRunner runner(options);
  CaseRunner::CaseResult result = runner.RunOne(MiscompileBaitCase(), /*iteration=*/1);
  EXPECT_NE(result.outcome, CaseOutcome::kJitDivergence);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.indicator, 5);
  }
  bpf::SetJitMiscompileForTest(false);
  bpf::SetJitForceUnavailableForTest(false);
}

}  // namespace
}  // namespace bvf
