// Robustness sweeps over the tooling surface: the disassembler never chokes
// on generated or arbitrary encodable instructions, campaign statistics are
// internally consistent, and generated fuzz cases drive the full pipeline
// deterministically across kernel versions.

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/fuzzer.h"
#include "src/core/structured_gen.h"
#include "src/runtime/bpf_syscall.h"

namespace bpf {
namespace {

TEST(DisasmRobustness, HandlesGeneratedPrograms) {
  bvf::StructuredGenerator generator(KernelVersion::kBpfNext);
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const bvf::FuzzCase the_case = generator.Generate(rng);
    const std::string text = the_case.prog.Disassemble();
    EXPECT_FALSE(text.empty());
    // One line per instruction.
    size_t lines = 0;
    for (const char c : text) {
      lines += c == '\n';
    }
    EXPECT_EQ(lines, the_case.prog.insns.size());
  }
}

TEST(DisasmRobustness, HandlesArbitraryBytes) {
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    Insn insn;
    insn.opcode = static_cast<uint8_t>(rng.Next());
    insn.dst = static_cast<uint8_t>(rng.Below(16));
    insn.src = static_cast<uint8_t>(rng.Below(16));
    insn.off = static_cast<int16_t>(rng.Next());
    insn.imm = static_cast<int32_t>(rng.Next());
    const std::string text = Disassemble(insn);
    EXPECT_FALSE(text.empty());
  }
}

TEST(CampaignConsistency, CountsAddUp) {
  bvf::CampaignOptions options;
  options.iterations = 500;
  options.seed = 88;
  options.bugs = BugConfig::All();
  bvf::StructuredGenerator generator(options.version);
  bvf::Fuzzer fuzzer(generator, options);
  const bvf::CampaignStats stats = fuzzer.Run();
  EXPECT_EQ(stats.iterations, options.iterations);
  EXPECT_EQ(stats.accepted + stats.rejected, stats.iterations);
  EXPECT_GE(stats.exec_runs, stats.accepted);  // each accepted runs >= once
  EXPECT_EQ(stats.findings.size(), stats.finding_signatures.size());
  EXPECT_GT(stats.insns_total, 0u);
  EXPECT_GE(stats.insns_total, stats.insns_alu_jmp + stats.insns_mem + stats.insns_call);
  // Sanitizer ran on every accepted program.
  EXPECT_EQ(stats.sanitizer.programs, stats.accepted);
  EXPECT_GE(stats.sanitizer.insns_after, stats.sanitizer.insns_before);
}

TEST(CampaignConsistency, SanitizeOffStillFindsIndicator2) {
  // Without sanitation, indicator #1 coverage is lost but kernel self-checks
  // (indicator #2) still fire — the paper's point that both are needed.
  bvf::CampaignOptions options;
  options.iterations = 3000;
  options.seed = 5;
  options.bugs = BugConfig::All();
  options.sanitize = false;
  bvf::StructuredGenerator generator(options.version);
  bvf::Fuzzer fuzzer(generator, options);
  const bvf::CampaignStats stats = fuzzer.Run();
  bool has_indicator2 = false;
  bool has_bpf_asan = false;
  for (const bvf::Finding& finding : stats.findings) {
    has_indicator2 |= finding.indicator == 2;
    has_bpf_asan |= IsIndicator1(finding.kind);
  }
  EXPECT_TRUE(has_indicator2);
  EXPECT_FALSE(has_bpf_asan);  // no dispatch checks were installed
}

TEST(CampaignConsistency, AllToolsRunAllVersions) {
  // Smoke: every (tool, version) pair completes a tiny campaign.
  for (const KernelVersion version :
       {KernelVersion::kV5_15, KernelVersion::kV6_1, KernelVersion::kBpfNext}) {
    bvf::StructuredGenerator bvf_gen(version);
    bvf::SyzkallerGenerator syz(version);
    bvf::BuzzerGenerator buzzer(version);
    for (bvf::Generator* generator :
         std::initializer_list<bvf::Generator*>{&bvf_gen, &syz, &buzzer}) {
      bvf::CampaignOptions options;
      options.version = version;
      options.bugs = BugConfig::ForVersion(version);
      options.iterations = 120;
      options.seed = 1;
      bvf::Fuzzer fuzzer(*generator, options);
      const bvf::CampaignStats stats = fuzzer.Run();
      EXPECT_EQ(stats.iterations, 120u) << generator->name();
    }
  }
}

TEST(CampaignConsistency, CorpusFeedbackCanBeDisabled) {
  bvf::CampaignOptions options;
  options.iterations = 300;
  options.seed = 6;
  options.coverage_feedback = false;
  bvf::StructuredGenerator generator(options.version);
  bvf::Fuzzer fuzzer(generator, options);
  const bvf::CampaignStats stats = fuzzer.Run();
  EXPECT_EQ(stats.iterations, 300u);
}

}  // namespace
}  // namespace bpf
