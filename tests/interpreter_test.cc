// Interpreter semantics: ALU ops (64/32), byte swaps, memory, atomics,
// jumps, calls, subprograms, and runaway-execution handling. Programs are
// executed through the full loader so they always match what the verifier
// accepted.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/interp_ops.h"

namespace bpf {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : kernel_(KernelVersion::kBpfNext, BugConfig::None()), bpf_(kernel_) {}

  // Loads and runs; expects acceptance.
  uint64_t Run(const Program& prog) {
    VerifierResult result;
    const int fd = bpf_.ProgLoad(prog, &result);
    EXPECT_GT(fd, 0) << result.log;
    if (fd <= 0) {
      return 0;
    }
    const ExecResult exec = bpf_.ProgTestRun(fd);
    EXPECT_EQ(exec.err, 0) << exec.abort_reason;
    return exec.r0;
  }

  Kernel kernel_;
  Bpf bpf_;
};

// r0 = lhs; r1 = rhs; r0 op= r1; exit. Exercises the register form.
struct AluSemCase {
  uint8_t op;
  bool is64;
  int64_t lhs;
  int64_t rhs;
  uint64_t expected;
};

class AluSemanticsTest : public ::testing::TestWithParam<AluSemCase> {};

TEST_P(AluSemanticsTest, RegisterForm) {
  const AluSemCase& c = GetParam();
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  ProgramBuilder b;
  b.LdImm64(kR0, static_cast<uint64_t>(c.lhs));
  b.LdImm64(kR1, static_cast<uint64_t>(c.rhs));
  if (c.is64) {
    b.Raw(AluReg(c.op, kR0, kR1));
  } else {
    b.Raw(Alu32Reg(c.op, kR0, kR1));
  }
  b.Ret();
  VerifierResult result;
  const int fd = bpf.ProgLoad(b.Build(), &result);
  ASSERT_GT(fd, 0) << result.log;
  EXPECT_EQ(bpf.ProgTestRun(fd).r0, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemanticsTest,
    ::testing::Values(
        AluSemCase{kAluAdd, true, 3, 4, 7},
        AluSemCase{kAluAdd, true, -1, 1, 0},
        AluSemCase{kAluAdd, false, 0xffffffff, 1, 0},  // 32-bit wraps + zexts
        AluSemCase{kAluSub, true, 3, 5, static_cast<uint64_t>(-2)},
        AluSemCase{kAluSub, false, 3, 5, 0xfffffffeu},
        AluSemCase{kAluMul, true, 7, 6, 42},
        AluSemCase{kAluDiv, true, 42, 6, 7},
        AluSemCase{kAluDiv, true, 42, 0, 0},  // div-by-zero yields 0
        AluSemCase{kAluDiv, true, -1, 2, 0x7fffffffffffffffull},  // unsigned div
        AluSemCase{kAluMod, true, 42, 5, 2},
        AluSemCase{kAluMod, true, 42, 0, 42},  // mod-by-zero keeps dst
        AluSemCase{kAluAnd, true, 0xf0f0, 0xff00, 0xf000},
        AluSemCase{kAluOr, true, 0xf0, 0x0f, 0xff},
        AluSemCase{kAluXor, true, 0xff, 0x0f, 0xf0},
        AluSemCase{kAluLsh, true, 1, 40, 1ull << 40},
        AluSemCase{kAluLsh, false, 1, 31, 0x80000000u},
        AluSemCase{kAluRsh, true, 1ull << 40, 40, 1},
        AluSemCase{kAluArsh, true, -8, 1, static_cast<uint64_t>(-4)},
        AluSemCase{kAluArsh, false, 0x80000000u, 4, 0xf8000000u},
        AluSemCase{kAluMov, true, 1, 99, 99}));

TEST_F(InterpreterTest, NegAndByteSwap) {
  ProgramBuilder b;
  b.Mov(kR0, 5);
  b.Raw(Neg(kR0));
  b.Ret();
  EXPECT_EQ(Run(b.Build()), static_cast<uint64_t>(-5));

  ProgramBuilder c;
  c.LdImm64(kR0, 0x0102030405060708ull);
  Insn bswap;
  bswap.opcode = kClassAlu | kAluEnd | 0x08;  // to_be
  bswap.dst = kR0;
  bswap.imm = 64;
  c.Raw(bswap);
  c.Ret();
  EXPECT_EQ(Run(c.Build()), 0x0807060504030201ull);
}

TEST_F(InterpreterTest, Truncate16) {
  ProgramBuilder b;
  b.LdImm64(kR0, 0x12345678ull);
  Insn to_le;
  to_le.opcode = kClassAlu | kAluEnd;  // to_le == truncate on little-endian
  to_le.dst = kR0;
  to_le.imm = 16;
  b.Raw(to_le);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 0x5678u);
}

TEST_F(InterpreterTest, StackStoreLoadRoundTrip) {
  ProgramBuilder b;
  b.LdImm64(kR1, 0x1122334455667788ull);
  b.Store(kSizeDw, kR10, kR1, -8);
  b.Load(kSizeW, kR0, kR10, -8);  // low word on little-endian
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 0x55667788u);
}

TEST_F(InterpreterTest, ByteGranularStores) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.StoreImm(kSizeB, kR10, -8, 0xAA);
  b.StoreImm(kSizeB, kR10, -7, 0xBB);
  b.StoreImm(kSizeH, kR10, -6, 0xCCDD);
  b.Load(kSizeW, kR0, kR10, -8);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 0xCCDDBBAAu);
}

TEST_F(InterpreterTest, AtomicAddAndFetch) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 10);
  b.Mov(kR1, 5);
  b.Raw(AtomicOp(kSizeDw, kR10, kR1, -8, kAtomicAdd | kAtomicFetch));
  // r1 now holds the old value (10); memory holds 15.
  b.Load(kSizeDw, kR0, kR10, -8);
  b.Alu(kAluAdd, kR0, kR1);  // 15 + 10
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 25u);
}

TEST_F(InterpreterTest, AtomicXchgAndCmpXchg) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 7);
  b.Mov(kR1, 9);
  b.Raw(AtomicOp(kSizeDw, kR10, kR1, -8, kAtomicXchg));
  // r1 = 7 (old), slot = 9.
  b.Mov(kR0, 9);  // comparator
  b.Mov(kR2, 33);
  b.Raw(AtomicOp(kSizeDw, kR10, kR2, -8, kAtomicCmpXchg));
  // r0 = 9 (old), slot = 33 since comparator matched.
  b.Load(kSizeDw, kR3, kR10, -8);
  b.Mov(kR0, kR3);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 33u);
}

TEST_F(InterpreterTest, Atomic32BitOr) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.StoreImm(kSizeW, kR10, -8, 0x0f);
  b.Mov(kR1, 0xf0);
  b.Raw(AtomicOp(kSizeW, kR10, kR1, -8, kAtomicOr));
  b.Load(kSizeW, kR0, kR10, -8);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 0xffu);
}

TEST_F(InterpreterTest, ConditionalJumpsSigned) {
  // r0 = (-5 s< 3) ? 1 : 2 via JSLT.
  ProgramBuilder b;
  b.Mov(kR1, -5);
  b.Mov(kR0, 2);
  b.JmpIf(kJmpJslt, kR1, 3, 1);
  b.Jmp(1);
  b.Mov(kR0, 1);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 1u);
}

TEST_F(InterpreterTest, Jmp32ComparesSubregister) {
  // r1 = 0x1_00000000 + 5. In 64-bit compare r1 > 10; in 32-bit, wr1 == 5.
  ProgramBuilder b;
  b.LdImm64(kR1, 0x100000005ull);
  b.Mov(kR0, 0);
  b.Raw(Jmp32Imm(kJmpJlt, kR1, 10, 1));
  b.Ret();
  b.Mov(kR0, 1);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 1u);
}

TEST_F(InterpreterTest, BoundedLoopComputesSum) {
  // sum 1..5 = 15.
  ProgramBuilder b;
  b.Mov(kR6, 5);
  b.Mov(kR0, 0);
  b.Alu(kAluAdd, kR0, kR6);
  b.Alu(kAluSub, kR6, 1);
  b.JmpIf(kJmpJne, kR6, 0, -3);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 15u);
}

TEST_F(InterpreterTest, SubprogramCallPreservesCalleeSaved) {
  // main: r6 = 7; r1 = 3; call sub; r0 += r6; exit     -> (3*2) + 7 = 13
  // sub:  r6 = 99 (own copy at runtime is restored); r0 = r1 * 2; exit
  ProgramBuilder b;
  b.Mov(kR6, 7);
  b.Mov(kR1, 3);
  b.Raw(CallPseudoFunc(2));  // to sub (insn 5)
  b.Alu(kAluAdd, kR0, kR6);
  b.Ret();
  // sub begins:
  b.Mov(kR6, 99);
  b.Mov(kR0, kR1);
  b.Alu(kAluAdd, kR0, kR1);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 13u);
}

TEST_F(InterpreterTest, SubprogramHasOwnStack) {
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 42);
  b.Mov(kR1, 0);
  b.Raw(CallPseudoFunc(2));  // sub at insn 4
  b.Load(kSizeDw, kR0, kR10, -8);  // must still be 42
  b.Ret();
  // sub: clobbers its own fp-8.
  b.StoreImm(kSizeDw, kR10, -8, 1);
  b.Mov(kR0, 0);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 42u);
}

TEST_F(InterpreterTest, HelperCallClobbersArgRegisters) {
  // After a helper call, R1-R5 contain garbage; the verifier knows this, so
  // reading them is rejected — here we check the runtime side by observing
  // that R6-R9 survive instead.
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR6, 1234);
  b.Call(kHelperKtimeGetNs);
  b.Mov(kR0, kR6);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 1234u);
}

TEST_F(InterpreterTest, KtimeIsMonotonic) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperKtimeGetNs);
  b.Mov(kR6, kR0);
  b.Call(kHelperKtimeGetNs);
  b.Alu(kAluSub, kR0, kR6);
  b.Ret();
  const uint64_t delta = Run(b.Build());
  EXPECT_GT(delta, 0u);
}

TEST_F(InterpreterTest, CtxSeedDeterminism) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Load(kSizeDw, kR0, kR1, 0);
  b.Ret();
  const int fd = bpf_.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  const uint64_t a = bpf_.ProgTestRun(fd, 64, 5).r0;
  const uint64_t b2 = bpf_.ProgTestRun(fd, 64, 5).r0;
  const uint64_t c = bpf_.ProgTestRun(fd, 64, 6).r0;
  EXPECT_EQ(a, b2);
  EXPECT_NE(a, c);
}

TEST_F(InterpreterTest, PacketBytesMatchSeed) {
  ProgramBuilder b(ProgType::kXdp);
  b.Mov(kR0, 0);
  b.Load(kSizeDw, kR2, kR1, 0);
  b.Load(kSizeDw, kR3, kR1, 8);
  b.Mov(kR4, kR2);
  b.Add(kR4, 2);
  b.JmpIfReg(kJmpJgt, kR4, kR3, 1);
  b.Load(kSizeH, kR0, kR2, 0);
  b.Ret();
  const int fd = bpf_.ProgLoad(b.Build());
  ASSERT_GT(fd, 0);
  EXPECT_EQ(bpf_.ProgTestRun(fd, 64, 1).r0, bpf_.ProgTestRun(fd, 64, 1).r0);
}

TEST_F(InterpreterTest, MapHelperRoundTrip) {
  MapDef def;
  def.type = MapType::kHash;
  def.key_size = 4;
  def.value_size = 8;
  def.max_entries = 4;
  const int map_fd = bpf_.MapCreate(def);

  // update(map, key=5 -> 777) via helper, then lookup and load.
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeW, kR10, -4, 5);
  b.StoreImm(kSizeDw, kR10, -16, 777);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Mov(kR3, kR10);
  b.Add(kR3, -16);
  b.Mov(kR4, 0);
  b.Call(kHelperMapUpdateElem);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 1);
  b.Load(kSizeDw, kR0, kR0, 0);
  b.Ret();
  EXPECT_EQ(Run(b.Build()), 777u);

  // Visible from user space too.
  const uint32_t key = 5;
  uint64_t value = 0;
  EXPECT_EQ(bpf_.MapLookupElem(map_fd, &key, &value), 0);
  EXPECT_EQ(value, 777u);
}

// ---------------------------------------------------------------------------
// Edge-semantics audit (ISSUE 4 satellite): the corners of AluOp32/AluOp64,
// and ExecEndian where our model could plausibly diverge from the Linux
// interpreter — shift-count masking, div/mod-by-zero, 32-bit operand
// truncation/zero-extension, and reserved byte-swap widths — pinned down in
// BOTH execution engines. Every program is loaded twice, once per engine, and
// the decoded micro-op result must equal the legacy result must equal the
// Linux-derived expectation.
// ---------------------------------------------------------------------------

class EdgeSemanticsTest : public ::testing::Test {
 protected:
  // Runs |prog| through the legacy and the decoded engine (fresh substrate
  // each, so neither leaks state into the other) and returns r0 after
  // asserting the engines agree and both runs completed cleanly.
  uint64_t RunBoth(const Program& prog) {
    uint64_t r0[2] = {0, 0};
    for (int decoded = 0; decoded < 2; ++decoded) {
      Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
      Bpf bpf(kernel);
      bpf.set_decoded_exec(decoded == 1);
      VerifierResult result;
      const int fd = bpf.ProgLoad(prog, &result);
      EXPECT_GT(fd, 0) << result.log;
      if (fd <= 0) {
        return 0;
      }
      const ExecResult exec = bpf.ProgTestRun(fd);
      EXPECT_EQ(exec.err, 0) << exec.abort_reason;
      r0[decoded] = exec.r0;
    }
    EXPECT_EQ(r0[0], r0[1]) << "legacy and decoded engines diverge";
    return r0[0];
  }

  // r0 = dst; r1 = src; r0 op= r1 (register form); exit.
  uint64_t AluBoth(uint8_t op, bool is64, uint64_t dst, uint64_t src) {
    ProgramBuilder b;
    b.LdImm64(kR0, dst);
    b.LdImm64(kR1, src);
    b.Raw(is64 ? AluReg(op, kR0, kR1) : Alu32Reg(op, kR0, kR1));
    b.Ret();
    return RunBoth(b.Build());
  }

  // r0 = value; bswap/truncate r0 with the given direction and width; exit.
  uint64_t EndianBoth(bool to_be, int32_t width, uint64_t value) {
    ProgramBuilder b;
    b.LdImm64(kR0, value);
    Insn end;
    end.opcode = kClassAlu | kAluEnd | (to_be ? 0x08 : 0x00);
    end.dst = kR0;
    end.imm = width;
    b.Raw(end);
    b.Ret();
    return RunBoth(b.Build());
  }
};

// Linux masks 64-bit shift counts to 6 bits (interpreter and JITs alike since
// 4.16): shifting by 64 is shifting by 0, by 65 is by 1, never UB.
TEST_F(EdgeSemanticsTest, Shift64CountsMaskedToSixBits) {
  EXPECT_EQ(AluBoth(kAluLsh, true, 0x1234, 64), 0x1234u);
  EXPECT_EQ(AluBoth(kAluLsh, true, 1, 66), 4u);
  EXPECT_EQ(AluBoth(kAluRsh, true, 0x80, 65), 0x40u);
  // 127 & 63 == 63: arithmetic shift propagates the sign bit all the way.
  EXPECT_EQ(AluBoth(kAluArsh, true, 0x8000000000000000ull, 127), ~0ull);
}

// 32-bit shifts mask to 5 bits and operate on the truncated subregister; the
// result is zero-extended like every other 32-bit ALU write.
TEST_F(EdgeSemanticsTest, Shift32CountsMaskedToFiveBits) {
  // Count 32 & 31 == 0: dst's low word survives, high word is zapped.
  EXPECT_EQ(AluBoth(kAluLsh, false, 0xdead000012345678ull, 32), 0x12345678u);
  EXPECT_EQ(AluBoth(kAluLsh, false, 1, 33), 2u);
  EXPECT_EQ(AluBoth(kAluRsh, false, 0x80000000u, 63), 0x1u);
  // arsh32 by 36 (& 31 == 4) keeps the 32-bit sign, then zero-extends.
  EXPECT_EQ(AluBoth(kAluArsh, false, 0x80000000u, 36), 0xf8000000u);
}

// BPF defines division by zero (dst = 0) and modulo by zero (dst unchanged)
// instead of trapping — the verifier's runtime patch semantics.
TEST_F(EdgeSemanticsTest, DivModByZero64) {
  EXPECT_EQ(AluBoth(kAluDiv, true, 42, 0), 0u);
  EXPECT_EQ(AluBoth(kAluMod, true, 0xdeadbeefcafef00dull, 0), 0xdeadbeefcafef00dull);
}

// The 32-bit forms work on truncated operands and zero-extend the result —
// including mod-by-zero, where Linux's patched sequence still writes dst via
// a 32-bit mov, so the untouched value comes back truncated and zexted.
TEST_F(EdgeSemanticsTest, DivModByZero32TruncatesAndZeroExtends) {
  EXPECT_EQ(AluBoth(kAluDiv, false, 0x1'00000005ull, 0), 0u);
  EXPECT_EQ(AluBoth(kAluMod, false, 0x1'00000005ull, 0), 5u);
  // Non-zero divisors: only the low words participate.
  EXPECT_EQ(AluBoth(kAluDiv, false, 0xffffffff'00000008ull, 0x1'00000002ull), 4u);
  EXPECT_EQ(AluBoth(kAluMod, false, 0xffffffff'00000009ull, 0x1'00000002ull), 1u);
}

TEST_F(EdgeSemanticsTest, ByteSwapValidWidths) {
  EXPECT_EQ(EndianBoth(/*to_be=*/true, 16, 0x0102ull), 0x0201u);
  EXPECT_EQ(EndianBoth(/*to_be=*/true, 32, 0x01020304ull), 0x04030201u);
  EXPECT_EQ(EndianBoth(/*to_be=*/true, 64, 0x0102030405060708ull), 0x0807060504030201ull);
  // to_le on a little-endian model is the kernel's (__uN) cast: truncation.
  EXPECT_EQ(EndianBoth(/*to_be=*/false, 16, 0xaabbccddull), 0xccddu);
  EXPECT_EQ(EndianBoth(/*to_be=*/false, 32, 0x11223344'55667788ull), 0x55667788u);
  EXPECT_EQ(EndianBoth(/*to_be=*/false, 64, 0x1122334455667788ull), 0x1122334455667788ull);
}

// Reserved swap widths never reach either engine: the front-end sanity check
// rejects them exactly like Linux's verifier ("BPF_END uses reserved fields").
TEST_F(EdgeSemanticsTest, ByteSwapReservedWidthsRejectedAtLoad) {
  for (const int32_t width : {0, 8, 24, 65, -16}) {
    for (const bool to_be : {false, true}) {
      Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
      Bpf bpf(kernel);
      ProgramBuilder b;
      b.LdImm64(kR0, 0x1234ull);
      Insn end;
      end.opcode = kClassAlu | kAluEnd | (to_be ? 0x08 : 0x00);
      end.dst = kR0;
      end.imm = width;
      b.Raw(end);
      b.Ret();
      VerifierResult result;
      EXPECT_EQ(bpf.ProgLoad(b.Build(), &result), -EINVAL)
          << "width " << width << " to_be " << to_be;
      EXPECT_NE(result.log.find("invalid ALU opcode"), std::string::npos) << result.log;
    }
  }
}

// Defensive semantics of the shared ExecEndian primitive for widths the
// loader already rejects: both engines execute this one inline helper
// (interpreter.cc and the kEndian uop), so pinning it here pins them both.
// to_be at an unknown width is a no-op (ByteSwap's default case); to_le
// masks, with width >= 64 a no-op and width <= 0 — including negatives,
// which the old open-coded mask shifted by — clearing the value.
TEST_F(EdgeSemanticsTest, ExecEndianReservedWidthSemantics) {
  EXPECT_EQ(ExecEndian(0x1234ull, /*to_be=*/true, 8), 0x1234u);
  EXPECT_EQ(ExecEndian(0x1234ull, /*to_be=*/true, 0), 0x1234u);
  EXPECT_EQ(ExecEndian(0x1234ull, /*to_be=*/true, -32), 0x1234u);
  EXPECT_EQ(ExecEndian(0xa5a5ull, /*to_be=*/false, 8), 0xa5u);
  EXPECT_EQ(ExecEndian(0x1234ull, /*to_be=*/false, 0), 0u);
  EXPECT_EQ(ExecEndian(0x1234ull, /*to_be=*/false, -16), 0u);
  EXPECT_EQ(ExecEndian(0x1234ull, /*to_be=*/false, 65), 0x1234u);
}

}  // namespace
}  // namespace bpf
