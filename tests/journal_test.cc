// Write-ahead findings/corpus journal (DESIGN.md §12.3): append/sync/replay
// round-trip, torn-tail and checksum-mismatch recovery on reopen, atomic
// rotation, and the payload grammar's round-trip through a record.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/journal/journal.h"
#include "src/core/serialize.h"

namespace bvf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

JournalRecord MakeRecord(JournalRecordType type, uint64_t iteration,
                         const std::string& payload) {
  JournalRecord record;
  record.type = type;
  record.iteration = iteration;
  record.payload = payload;
  return record;
}

std::string ReadWhole(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void WriteWhole(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << data;
}

TEST(JournalTest, AppendSyncReplayRoundTrip) {
  const std::string path = TempPath("journal_roundtrip.bvfj");
  std::remove(path.c_str());

  Journal journal;
  std::string error;
  ASSERT_EQ(journal.Open(path, &error), 0) << error;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 7, "payload-a")), 0);
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kCorpusCase, 9, "payload-b")), 0);
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kMark, 65, "")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();

  std::vector<JournalRecord> records;
  bool truncated = true;
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0) << error;
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, JournalRecordType::kFinding);
  EXPECT_EQ(records[0].iteration, 7u);
  EXPECT_EQ(records[0].payload, "payload-a");
  EXPECT_EQ(records[1].type, JournalRecordType::kCorpusCase);
  EXPECT_EQ(records[1].payload, "payload-b");
  EXPECT_EQ(records[2].type, JournalRecordType::kMark);
  EXPECT_EQ(records[2].iteration, 65u);
}

TEST(JournalTest, ReplayRecoversValidPrefixOfTornTail) {
  const std::string path = TempPath("journal_torn.bvfj");
  std::remove(path.c_str());

  Journal journal;
  std::string error;
  ASSERT_EQ(journal.Open(path, &error), 0) << error;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 1, "intact-1")), 0);
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 2, "intact-2")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();

  // A writer killed mid-append leaves a half-written record: simulate by
  // appending a record and chopping bytes off the end of the file.
  ASSERT_EQ(journal.Open(path, &error), 0) << error;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 3, "torn-away")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();
  std::string data = ReadWhole(path);
  WriteWhole(path, data.substr(0, data.size() - 5));

  std::vector<JournalRecord> records;
  bool truncated = false;
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0);
  EXPECT_TRUE(truncated);
  EXPECT_NE(error.find("torn"), std::string::npos) << error;
  ASSERT_EQ(records.size(), 2u);  // the valid prefix survives
  EXPECT_EQ(records[1].payload, "intact-2");
}

TEST(JournalTest, ReopenTruncatesTornTailAndContinues) {
  const std::string path = TempPath("journal_reopen.bvfj");
  std::remove(path.c_str());

  Journal journal;
  std::string error;
  ASSERT_EQ(journal.Open(path, &error), 0) << error;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 1, "keep-me")), 0);
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 2, "lose-my-tail")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();
  std::string data = ReadWhole(path);
  WriteWhole(path, data.substr(0, data.size() - 3));

  // Reopen: the torn tail is dropped (reported via |recovered|), and new
  // appends land cleanly after the surviving record.
  std::string recovered;
  ASSERT_EQ(journal.Open(path, &error, &recovered), 0) << error;
  EXPECT_NE(recovered.find("dropped"), std::string::npos) << recovered;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 3, "after-repair")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();

  std::vector<JournalRecord> records;
  bool truncated = true;
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0) << error;
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "keep-me");
  EXPECT_EQ(records[1].payload, "after-repair");
}

TEST(JournalTest, ChecksumMismatchStopsReplayAtCorruption) {
  const std::string path = TempPath("journal_corrupt.bvfj");
  std::remove(path.c_str());

  Journal journal;
  std::string error;
  ASSERT_EQ(journal.Open(path, &error), 0) << error;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 1, "good")), 0);
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 2, "flipped")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();

  // Flip one payload byte of the second record (the last payload byte of the
  // file): framing stays plausible, the checksum must catch it.
  std::string data = ReadWhole(path);
  data[data.size() - 1] ^= 0x01;
  WriteWhole(path, data);

  std::vector<JournalRecord> records;
  bool truncated = false;
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0);
  EXPECT_TRUE(truncated);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "good");

  // Reopen repairs by truncation, same as a torn tail.
  std::string recovered;
  ASSERT_EQ(journal.Open(path, &error, &recovered), 0) << error;
  EXPECT_NE(recovered.find("checksum"), std::string::npos) << recovered;
  journal.Close();
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0);
  EXPECT_FALSE(truncated);
}

TEST(JournalTest, RotateEmptiesTheJournalAtomically) {
  const std::string path = TempPath("journal_rotate.bvfj");
  std::remove(path.c_str());

  Journal journal;
  std::string error;
  ASSERT_EQ(journal.Open(path, &error), 0) << error;
  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kFinding, 1, "pre-rotate")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  ASSERT_EQ(journal.Rotate(), 0);

  // The journal is empty but still a journal; appends keep working on the
  // rotated file.
  std::vector<JournalRecord> records;
  bool truncated = true;
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0) << error;
  EXPECT_FALSE(truncated);
  EXPECT_TRUE(records.empty());

  ASSERT_EQ(journal.Append(MakeRecord(JournalRecordType::kMark, 129, "")), 0);
  ASSERT_EQ(journal.Sync(), 0);
  journal.Close();
  ASSERT_EQ(Journal::Replay(path, &records, &error, &truncated), 0) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].iteration, 129u);
}

TEST(JournalTest, ReplayRejectsNonJournalFile) {
  const std::string path = TempPath("journal_notajournal.txt");
  WriteWhole(path, "just some text\n");
  std::vector<JournalRecord> records;
  std::string error;
  EXPECT_LT(Journal::Replay(path, &records, &error, nullptr), 0);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

}  // namespace
}  // namespace bvf
