// Call checking: the helper-prototype argument matrix, version/prog-type
// gating, kfunc acquire/release discipline, and bpf-to-bpf subprograms.

#include <gtest/gtest.h>

#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/verifier/helper_protos.h"

namespace bpf {
namespace {

class VerifierCallsTest : public ::testing::Test {
 protected:
  explicit VerifierCallsTest(KernelVersion version = KernelVersion::kBpfNext)
      : kernel_(version, BugConfig::None()), bpf_(kernel_) {}

  int Load(const Program& prog, VerifierResult* result = nullptr) {
    VerifierResult local;
    return bpf_.ProgLoad(prog, result != nullptr ? result : &local);
  }

  int CreateMap(MapType type, uint32_t key_size = 4, uint32_t value_size = 16) {
    MapDef def;
    def.type = type;
    def.key_size = key_size;
    def.value_size = value_size;
    def.max_entries = 8;
    return bpf_.MapCreate(def);
  }

  Kernel kernel_;
  Bpf bpf_;
};

TEST_F(VerifierCallsTest, MapUpdateFullContract) {
  const int map_fd = CreateMap(MapType::kHash, 4, 16);
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -4, 1);
  b.StoreImm(kSizeDw, kR10, -16, 0);
  b.StoreImm(kSizeDw, kR10, -24, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Mov(kR3, kR10);
  b.Add(kR3, -24);
  b.Mov(kR4, 0);
  b.Call(kHelperMapUpdateElem);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierCallsTest, MapArgWrongTypeRejected) {
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -4, 1);
  b.Mov(kR1, 7);  // scalar instead of map pointer
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -EACCES);
  EXPECT_NE(result.log.find("expects map pointer"), std::string::npos);
}

TEST_F(VerifierCallsTest, KeyTooShortRejected) {
  const int map_fd = CreateMap(MapType::kHash, 16, 8);  // 16-byte keys
  ProgramBuilder b;
  b.StoreImm(kSizeDw, kR10, -8, 0);  // only 8 bytes initialized
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.Call(kHelperMapLookupElem);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, KeyFromMapValueAccepted) {
  const int map_fd = CreateMap(MapType::kHash, 4, 16);
  // A map value pointer is valid key memory.
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 5);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR0);  // key pointer = map value
  b.Call(kHelperMapLookupElem);
  b.Mov(kR0, 0);
  b.Mov(kR0, 0);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierCallsTest, ConstSizeMustBeBounded) {
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Mov(kR1, kR10);
  b.Add(kR1, -8);
  b.Load(kSizeDw, kR2, kR10, -8);  // unknown scalar as size
  b.Mov(kR3, 0);
  b.Call(kHelperTracePrintk);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -EACCES) << result.log;
  EXPECT_NE(result.log.find("size"), std::string::npos);
}

TEST_F(VerifierCallsTest, ConstSizeZeroRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Mov(kR1, kR10);
  b.Add(kR1, -8);
  b.Mov(kR2, 0);
  b.Mov(kR3, 0);
  b.Call(kHelperTracePrintk);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, SizeLargerThanStackWindowRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Mov(kR1, kR10);
  b.Add(kR1, -8);
  b.Mov(kR2, 16);  // claims 16 readable bytes, but r1 points 8 from the top
  b.Mov(kR3, 0);
  b.Call(kHelperTracePrintk);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, WriteArgInitializesStack) {
  // get_current_comm writes 16 bytes; afterwards those slots are readable.
  ProgramBuilder b(ProgType::kKprobe);
  b.Mov(kR1, kR10);
  b.Add(kR1, -16);
  b.Mov(kR2, 16);
  b.Call(kHelperGetCurrentComm);
  b.Load(kSizeDw, kR0, kR10, -16);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierCallsTest, CtxArgRequired) {
  const int map_fd = CreateMap(MapType::kArray);
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Mov(kR1, kR10);  // stack ptr where ctx is expected
  b.LdMapFd(kR2, map_fd);
  b.Mov(kR3, 0);
  b.Mov(kR4, kR10);
  b.Add(kR4, -8);
  b.Mov(kR5, 8);
  b.Call(kHelperPerfEventOutput);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, TaskArgRequiresBtfPointer) {
  const int map_fd = CreateMap(MapType::kHash, 8, 16);
  ProgramBuilder b(ProgType::kKprobe);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, 7);  // scalar where task_struct expected
  b.Mov(kR3, 0);
  b.Mov(kR4, 1);
  b.Call(kHelperTaskStorageGet);
  b.RetImm(0);
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, HelpersReportedInSummary) {
  ProgramBuilder b(ProgType::kKprobe);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Mov(kR1, kR10);
  b.Add(kR1, -8);
  b.Mov(kR2, 4);
  b.Mov(kR3, 0);
  b.Call(kHelperTracePrintk);
  b.Mov(kR1, 9);
  b.Call(kHelperSendSignal);
  b.RetImm(0);
  VerifierResult result;
  ASSERT_GT(Load(b.Build(), &result), 0) << result.log;
  EXPECT_TRUE(result.uses_printk_helper);
  EXPECT_TRUE(result.uses_lock_helper);  // trace_printk takes its lock
  EXPECT_TRUE(result.uses_signal_helper);
  EXPECT_FALSE(result.uses_irqwork_helper);
  EXPECT_EQ(result.helpers_used.size(), 2u);
}

// ---- Version / program-type gating ----

TEST(HelperProtoTest, VersionGates) {
  EXPECT_EQ(FindHelperProto(kHelperGetCurrentTaskBtf, KernelVersion::kV5_15, ProgType::kKprobe),
            nullptr);
  EXPECT_NE(FindHelperProto(kHelperGetCurrentTaskBtf, KernelVersion::kV6_1, ProgType::kKprobe),
            nullptr);
  EXPECT_EQ(FindHelperProto(kHelperLoop, KernelVersion::kV6_1, ProgType::kKprobe), nullptr);
  EXPECT_NE(FindHelperProto(kHelperLoop, KernelVersion::kBpfNext, ProgType::kKprobe), nullptr);
}

TEST(HelperProtoTest, ProgTypeGates) {
  EXPECT_EQ(
      FindHelperProto(kHelperTracePrintk, KernelVersion::kBpfNext, ProgType::kSocketFilter),
      nullptr);
  EXPECT_NE(FindHelperProto(kHelperTracePrintk, KernelVersion::kBpfNext, ProgType::kKprobe),
            nullptr);
  EXPECT_NE(
      FindHelperProto(kHelperMapLookupElem, KernelVersion::kBpfNext, ProgType::kSocketFilter),
      nullptr);
}

TEST(HelperProtoTest, AvailableGrowsWithVersion) {
  const auto v5 = AvailableHelpers(KernelVersion::kV5_15, ProgType::kKprobe);
  const auto next = AvailableHelpers(KernelVersion::kBpfNext, ProgType::kKprobe);
  EXPECT_GT(next.size(), v5.size());
  EXPECT_TRUE(AvailableKfuncs(KernelVersion::kV5_15).empty());
  EXPECT_FALSE(AvailableKfuncs(KernelVersion::kBpfNext).empty());
}

TEST(HelperProtoTest, Ordinals) {
  EXPECT_EQ(HelperOrdinal(kHelperMapLookupElem), 0);
  EXPECT_GE(HelperOrdinal(kHelperLoop), 0);
  EXPECT_EQ(HelperOrdinal(424242), -1);
  EXPECT_EQ(KfuncOrdinal(kKfuncTaskAcquire), 0);
  EXPECT_EQ(KfuncOrdinal(5), -1);
}

TEST(VersionedCallsTest, KfuncRejectedOnV5_15) {
  Kernel kernel(KernelVersion::kV5_15, BugConfig::None());
  Bpf bpf(kernel);
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTask);
  b.Mov(kR1, kR0);
  b.Kfunc(kKfuncTaskAcquire);
  b.RetImm(0);
  // kfunc support is gated before argument checking: unknown kfunc.
  EXPECT_EQ(bpf.ProgLoad(b.Build()), -EINVAL);
  ProgramBuilder c(ProgType::kKprobe);
  c.Kfunc(kKfuncRcuReadLock);
  c.RetImm(0);
  EXPECT_EQ(bpf.ProgLoad(c.Build()), -EINVAL);
}

// ---- kfunc reference discipline ----

TEST_F(VerifierCallsTest, DoubleReleaseRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR6, kR0);
  b.Mov(kR1, kR6);
  b.Kfunc(kKfuncTaskAcquire);
  b.Mov(kR7, kR0);
  b.Mov(kR1, kR7);
  b.Kfunc(kKfuncTaskRelease);
  b.Mov(kR1, kR7);  // the reference is gone; the register was invalidated
  b.Kfunc(kKfuncTaskRelease);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_LT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierCallsTest, ReleaseOfUnacquiredRejected) {
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR1, kR0);  // plain trusted pointer, not an acquired ref
  b.Kfunc(kKfuncTaskRelease);
  b.RetImm(0);
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -EINVAL) << result.log;
  EXPECT_NE(result.log.find("unacquired"), std::string::npos);
}

TEST_F(VerifierCallsTest, LeakAcrossOnePathRejected) {
  // The reference is released on one branch only: the leaking path must fail.
  ProgramBuilder b(ProgType::kKprobe);
  b.Call(kHelperGetCurrentTaskBtf);
  b.Mov(kR1, kR0);
  b.Kfunc(kKfuncTaskAcquire);
  b.Mov(kR6, kR0);
  b.Load(kSizeDw, kR7, kR1, 16);  // some scalar to branch on... r1 clobbered!
  b.RetImm(0);
  // r1 is not-init after the kfunc; use ctx instead.
  ProgramBuilder c(ProgType::kKprobe);
  c.Load(kSizeDw, kR8, kR1, 0);  // scalar from ctx
  c.Call(kHelperGetCurrentTaskBtf);
  c.Mov(kR1, kR0);
  c.Kfunc(kKfuncTaskAcquire);
  c.Mov(kR6, kR0);
  c.JmpIf(kJmpJeq, kR8, 0, 2);  // on the taken path the ref leaks
  c.Mov(kR1, kR6);
  c.Kfunc(kKfuncTaskRelease);
  c.RetImm(0);
  VerifierResult result;
  EXPECT_EQ(Load(c.Build(), &result), -EINVAL) << result.log;
  EXPECT_NE(result.log.find("reference leak"), std::string::npos);
}

// ---- Subprograms ----

TEST_F(VerifierCallsTest, SubprogArgsFlowIn) {
  // Caller passes a map value pointer; callee dereferences it.
  const int map_fd = CreateMap(MapType::kArray, 4, 16);
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -4, 0);
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -4);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);
  b.Mov(kR1, kR0);
  b.Raw(CallPseudoFunc(2));  // callee below
  b.RetImm(0);               // + fallthrough target
  // callee:
  b.Load(kSizeDw, kR0, kR1, 8);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierCallsTest, SubprogCalleeSavedVisibleAfterReturn) {
  ProgramBuilder b;
  b.Mov(kR6, 11);
  b.Mov(kR1, 0);
  b.Raw(CallPseudoFunc(2));
  b.Mov(kR0, kR6);  // r6 still valid in the caller
  b.Ret();
  // callee:
  b.Mov(kR0, 0);
  b.Ret();
  VerifierResult result;
  EXPECT_GT(Load(b.Build(), &result), 0) << result.log;
}

TEST_F(VerifierCallsTest, SubprogCalleeStartsUninit) {
  ProgramBuilder b;
  b.Mov(kR6, 11);
  b.Mov(kR1, 0);
  b.Raw(CallPseudoFunc(2));
  b.RetImm(0);
  // callee reads the CALLER's r6: must be rejected (own frame, not init).
  b.Mov(kR0, kR6);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, SubprogScratchesCallerR1To5) {
  ProgramBuilder b;
  b.Mov(kR1, 5);
  b.Raw(CallPseudoFunc(2));
  b.Mov(kR0, kR1);  // r1 was clobbered by the call
  b.Ret();
  b.Mov(kR0, 0);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

TEST_F(VerifierCallsTest, CallDepthLimit) {
  // Self-recursive subprogram exceeds the frame limit.
  ProgramBuilder b;
  b.Mov(kR1, 0);
  b.Raw(CallPseudoFunc(2));  // to the subprogram at insn 4
  b.RetImm(0);
  // sub: calls itself.
  b.Raw(CallPseudoFunc(-1));
  b.RetImm(0);
  VerifierResult result;
  EXPECT_EQ(Load(b.Build(), &result), -E2BIG) << result.log;
  EXPECT_NE(result.log.find("too deep"), std::string::npos);
}

TEST_F(VerifierCallsTest, SubprogReturnIsScalar) {
  const int map_fd = CreateMap(MapType::kArray, 4, 16);
  // Callee returns a map pointer: its R0 flows to the caller, which must not
  // be able to pass it off as a scalar exit code.
  ProgramBuilder b;
  b.Mov(kR1, 0);
  b.Raw(CallPseudoFunc(1));
  b.Ret();  // caller exits with callee's R0 (a pointer) -> reject
  b.LdMapFd(kR0, map_fd);
  b.Ret();
  EXPECT_EQ(Load(b.Build()), -EACCES);
}

}  // namespace
}  // namespace bpf
