// Crash-isolated campaign supervisor (DESIGN.md §12): digest identity with
// the in-process parallel engine, crash/hang recovery mid-epoch, poison-case
// quarantine, SIGTERM graceful stop + resume bit-identity, checkpoint
// interchange with ParallelFuzzer, and the write-ahead journal's no-lost-
// finding guarantee across a hard kill of the coordinator.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/journal/journal.h"
#include "src/core/parallel.h"
#include "src/core/serialize.h"
#include "src/core/structured_gen.h"
#include "src/core/supervisor/supervisor.h"

namespace bvf {
namespace {

using bpf::BugConfig;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.iterations = 240;
  options.seed = 11;
  options.bugs = BugConfig::All();
  options.fault.probability = 0.05;
  options.confirm_runs = 1;
  options.epoch_len = 32;
  options.jobs = 2;
  options.retry_backoff_ms = 1;  // keep recovery tests fast
  return options;
}

CampaignStats RunSupervised(const CampaignOptions& options) {
  StructuredGenerator generator(options.version);
  SupervisedFuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

CampaignStats RunParallel(const CampaignOptions& options) {
  StructuredGenerator generator(options.version);
  ParallelFuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

// ---- Digest identity with the in-process engine ----

TEST(SupervisorDigestTest, MatchesInProcessEngineAcrossJobCounts) {
  const CampaignOptions base = SmallCampaign();
  const std::string in_process = StatsDigest(RunParallel(base));

  for (int jobs : {1, 2, 3}) {
    CampaignOptions options = base;
    options.jobs = jobs;
    const CampaignStats stats = RunSupervised(options);
    EXPECT_TRUE(stats.resume_error.empty()) << stats.resume_error;
    EXPECT_EQ(StatsDigest(stats), in_process) << "jobs=" << jobs;
    EXPECT_EQ(stats.worker_crashes, 0u);
    EXPECT_EQ(stats.worker_restarts, 0u);
  }
}

// ---- Crash recovery ----

TEST(SupervisorCrashTest, Sigkill9MidEpochRetriesToIdenticalDigest) {
  const CampaignOptions base = SmallCampaign();
  const std::string clean = StatsDigest(RunParallel(base));

  const std::string marker = TempPath("supervisor_kill9.marker");
  std::remove(marker.c_str());
  CampaignOptions options = base;
  options.test_crash_at = 50;   // mid-epoch (epoch 2 of 32-iteration epochs)
  options.test_crash_mode = 1;  // SIGKILL, the harshest death
  options.test_crash_marker = marker;  // fire once; the retry runs clean
  const CampaignStats stats = RunSupervised(options);

  EXPECT_TRUE(stats.resume_error.empty()) << stats.resume_error;
  EXPECT_EQ(StatsDigest(stats), clean);
  EXPECT_EQ(stats.worker_crashes, 1u);
  EXPECT_EQ(stats.worker_restarts, 1u);
  EXPECT_EQ(stats.quarantined_cases, 0u);
  EXPECT_EQ(stats.iterations, base.iterations);  // nothing skipped
  // The death is a first-class (digest-excluded) finding with forensics.
  ASSERT_EQ(stats.crash_findings.size(), 1u);
  EXPECT_EQ(stats.crash_findings[0].kind, bpf::ReportKind::kWorkerCrash);
  EXPECT_NE(stats.crash_findings[0].signature.find("signal:9"), std::string::npos)
      << stats.crash_findings[0].signature;
  std::remove(marker.c_str());
}

TEST(SupervisorCrashTest, AbortSignalCarriesWorkerStderrInFinding) {
  const std::string marker = TempPath("supervisor_abort.marker");
  std::remove(marker.c_str());
  CampaignOptions options = SmallCampaign();
  options.test_crash_at = 40;
  options.test_crash_mode = 0;  // SIGABRT (the shape of a sanitizer abort)
  options.test_crash_marker = marker;
  const CampaignStats stats = RunSupervised(options);

  EXPECT_EQ(stats.worker_crashes, 1u);
  ASSERT_EQ(stats.crash_findings.size(), 1u);
  // The injector printed to the worker's stderr before dying; the supervisor
  // must have captured it into the crash finding's details.
  EXPECT_NE(stats.crash_findings[0].details.find("injected failure"), std::string::npos)
      << stats.crash_findings[0].details;
  EXPECT_NE(stats.crash_findings[0].details.find("iteration 40"), std::string::npos)
      << stats.crash_findings[0].details;
  std::remove(marker.c_str());
}

TEST(SupervisorCrashTest, HangedWorkerIsReapedAndRetried) {
  const CampaignOptions base = SmallCampaign();
  const std::string clean = StatsDigest(RunParallel(base));

  const std::string marker = TempPath("supervisor_hang.marker");
  std::remove(marker.c_str());
  CampaignOptions options = base;
  options.test_crash_at = 50;
  options.test_crash_mode = 2;  // hang forever
  options.test_crash_marker = marker;
  options.hang_timeout_ms = 500;
  const CampaignStats stats = RunSupervised(options);

  EXPECT_TRUE(stats.resume_error.empty()) << stats.resume_error;
  EXPECT_EQ(StatsDigest(stats), clean);
  EXPECT_EQ(stats.worker_hangs, 1u);
  EXPECT_EQ(stats.worker_restarts, 1u);
  std::remove(marker.c_str());
}

// ---- Poison-case quarantine ----

TEST(SupervisorQuarantineTest, PersistentCrasherIsQuarantinedAndCampaignDegrades) {
  const std::string quarantine = TempPath("supervisor_poison.bvfq");
  std::remove(quarantine.c_str());
  CampaignOptions options = SmallCampaign();
  options.test_crash_at = 50;
  options.test_crash_mode = 0;
  // No marker: the injected crash fires on EVERY attempt — a poison case.
  options.worker_retries = 2;
  options.quarantine_path = quarantine;
  const CampaignStats stats = RunSupervised(options);

  EXPECT_TRUE(stats.resume_error.empty()) << stats.resume_error;
  EXPECT_EQ(stats.worker_crashes, 2u);  // retried exactly worker_retries times
  EXPECT_EQ(stats.quarantined_cases, 1u);
  EXPECT_EQ(stats.epochs_abandoned, 1u);
  // The poisoned iteration was skipped, everything else ran.
  EXPECT_EQ(stats.iterations, options.iterations - 1);

  // The quarantine file replays: same iteration, the exact in-flight case.
  std::vector<QuarantineRecord> records;
  std::string error;
  ASSERT_EQ(LoadQuarantine(quarantine, &records, &error), 0) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].iteration, 50u);
  EXPECT_EQ(records[0].attempts, 2);
  EXPECT_EQ(records[0].signal_or_code, SIGABRT);
  EXPECT_FALSE(records[0].the_case.prog.insns.empty());
  std::remove(quarantine.c_str());
}

// ---- SIGTERM graceful stop + resume ----

TEST(SupervisorResumeTest, SigtermMidCampaignThenResumeIsBitIdentical) {
  CampaignOptions base = SmallCampaign();
  base.iterations = 2000;  // long enough that SIGTERM lands mid-campaign
  const std::string clean = StatsDigest(RunParallel(base));

  const std::string path = TempPath("supervisor_sigterm.bvfcp");
  std::remove(path.c_str());
  CampaignOptions first_leg = base;
  first_leg.checkpoint_path = path;
  first_leg.checkpoint_every = 64;

  // SIGTERM the coordinator (this process) mid-run; the supervisor's handler
  // finishes the in-flight epoch, checkpoints at the barrier, and returns.
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ::kill(::getpid(), SIGTERM);
  });
  const CampaignStats partial = RunSupervised(first_leg);
  killer.join();
  ASSERT_TRUE(partial.resume_error.empty()) << partial.resume_error;

  if (partial.iterations < base.iterations) {
    // The stop landed mid-campaign (the expected case): state is only
    // well-defined at epoch barriers.
    EXPECT_EQ(partial.iterations % base.epoch_len, 0u);
  }

  CampaignOptions second_leg = base;
  second_leg.resume_path = path;
  const CampaignStats full = RunSupervised(second_leg);
  EXPECT_TRUE(full.resume_error.empty()) << full.resume_error;
  EXPECT_EQ(StatsDigest(full), clean);
  std::remove(path.c_str());
}

TEST(SupervisorResumeTest, CheckpointsInterchangeWithInProcessEngine) {
  const CampaignOptions base = SmallCampaign();
  const std::string clean = StatsDigest(RunParallel(base));

  // Supervised first leg (simulated kill), in-process second leg.
  const std::string path = TempPath("supervisor_interchange.bvfcp");
  std::remove(path.c_str());
  CampaignOptions first_leg = base;
  first_leg.stop_after = 100;  // quantized up to epoch end (128)
  first_leg.checkpoint_path = path;
  first_leg.checkpoint_every = 64;
  const CampaignStats partial = RunSupervised(first_leg);
  ASSERT_TRUE(partial.resume_error.empty()) << partial.resume_error;
  EXPECT_EQ(partial.iterations, 128u);

  CampaignOptions second_leg = base;
  second_leg.jobs = 1;
  second_leg.resume_path = path;
  const CampaignStats full = RunParallel(second_leg);
  EXPECT_TRUE(full.resume_error.empty()) << full.resume_error;
  EXPECT_EQ(full.resumed_from, 129u);
  EXPECT_EQ(StatsDigest(full), clean);

  // And the reverse: an in-process checkpoint resumed under supervision.
  std::remove(path.c_str());
  const CampaignStats partial2 = RunParallel(first_leg);
  ASSERT_TRUE(partial2.resume_error.empty()) << partial2.resume_error;
  const CampaignStats full2 = RunSupervised(second_leg);
  EXPECT_TRUE(full2.resume_error.empty()) << full2.resume_error;
  EXPECT_EQ(StatsDigest(full2), clean);
  std::remove(path.c_str());
}

// ---- Write-ahead journal: no recorded finding is lost ----

TEST(SupervisorJournalTest, JournalHoldsEveryMergedFinding) {
  const std::string journal_path = TempPath("supervisor_journal.bvfj");
  std::remove(journal_path.c_str());
  CampaignOptions options = SmallCampaign();
  options.journal_path = journal_path;  // no checkpoint: the journal never rotates
  const CampaignStats stats = RunSupervised(options);
  ASSERT_TRUE(stats.resume_error.empty()) << stats.resume_error;

  std::vector<JournalRecord> records;
  std::string error;
  bool truncated = true;
  ASSERT_EQ(Journal::Replay(journal_path, &records, &error, &truncated), 0) << error;
  EXPECT_FALSE(truncated);

  std::set<std::string> journaled;
  uint64_t marks = 0;
  for (const JournalRecord& record : records) {
    if (record.type == JournalRecordType::kFinding) {
      std::istringstream is(record.payload);
      serialize::Reader reader(is);
      Finding finding;
      serialize::ParseFinding(reader, &finding);
      ASSERT_TRUE(reader.ok()) << reader.error();
      journaled.insert(finding.signature);
    } else if (record.type == JournalRecordType::kMark) {
      ++marks;
    }
  }
  // Exactly one barrier mark per epoch, and exactly the campaign's findings.
  EXPECT_EQ(marks, (options.iterations + options.epoch_len - 1) / options.epoch_len);
  EXPECT_EQ(journaled, stats.finding_signatures);
  std::remove(journal_path.c_str());
}

TEST(SupervisorJournalTest, HardKilledCampaignLosesNoJournaledFinding) {
  // The acceptance experiment: SIGKILL the whole supervised campaign (no
  // graceful stop, no final checkpoint), then prove via journal replay that
  // every finding recorded before the kill is a finding of the uninterrupted
  // run — i.e. nothing the journal promised was lost or invented.
  const std::string journal_path = TempPath("supervisor_kill_journal.bvfj");
  std::remove(journal_path.c_str());
  CampaignOptions options = SmallCampaign();
  options.iterations = 2000;
  options.journal_path = journal_path;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Coordinator process: run to completion unless killed first.
    const CampaignStats stats = RunSupervised(options);
    ::_exit(stats.resume_error.empty() ? 0 : 1);
  }
  ::usleep(600 * 1000);  // let a few epochs barrier-merge and journal
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  std::vector<JournalRecord> records;
  std::string error;
  bool truncated = false;
  ASSERT_EQ(Journal::Replay(journal_path, &records, &error, &truncated), 0) << error;
  // A torn tail is possible (killed mid-append) and fine; every intact record
  // must check out against the uninterrupted run.
  const CampaignStats full = RunParallel(options);
  uint64_t findings_checked = 0;
  for (const JournalRecord& record : records) {
    if (record.type != JournalRecordType::kFinding) {
      continue;
    }
    std::istringstream is(record.payload);
    serialize::Reader reader(is);
    Finding finding;
    serialize::ParseFinding(reader, &finding);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(full.finding_signatures.count(finding.signature), 1u)
        << "journaled finding missing from the uninterrupted run: "
        << finding.signature;
    ++findings_checked;
  }
  // The run had ~600ms; at least one barrier must have journaled something
  // (marks always; typically findings too). Guard the test isn't vacuous.
  EXPECT_FALSE(records.empty());
  (void)findings_checked;
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace bvf
