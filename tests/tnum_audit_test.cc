// Bounded-exhaustive soundness of the tnum operators: every 8-bit tnum pair,
// every concrete member pair, the abstract result must contain the concrete
// one. Split per operator so ctest can parallelize and pinpoint failures.

#include <gtest/gtest.h>

#include "src/analysis/tnum_audit.h"

namespace bvf {
namespace {

void ExpectSound(TnumOp op, uint64_t min_checked) {
  const TnumAuditResult result = AuditTnumOp(op);
  EXPECT_GE(result.checked, min_checked);
  EXPECT_TRUE(result.ok()) << TnumOpName(op) << ": "
                           << result.violations.size() << " violations, first: "
                           << result.violations[0].ToString();
}

// 6561 8-bit tnums carry 65536 member instances in total, so a full binary
// sweep checks 65536^2 = 2^32 concrete pairs (half for commutative ops).
constexpr uint64_t kFullPairs = uint64_t{1} << 32;

TEST(TnumAuditTest, Add) { ExpectSound(TnumOp::kAdd, kFullPairs / 2); }
TEST(TnumAuditTest, Sub) { ExpectSound(TnumOp::kSub, kFullPairs); }
TEST(TnumAuditTest, And) { ExpectSound(TnumOp::kAnd, kFullPairs / 2); }
TEST(TnumAuditTest, Or) { ExpectSound(TnumOp::kOr, kFullPairs / 2); }
TEST(TnumAuditTest, Xor) { ExpectSound(TnumOp::kXor, kFullPairs / 2); }
TEST(TnumAuditTest, Mul) { ExpectSound(TnumOp::kMul, kFullPairs / 2); }
TEST(TnumAuditTest, Lshift) { ExpectSound(TnumOp::kLshift, 64 * 65536); }
TEST(TnumAuditTest, Rshift) { ExpectSound(TnumOp::kRshift, 2 * 64 * 65536); }
TEST(TnumAuditTest, Arshift) { ExpectSound(TnumOp::kArshift, 2 * 64 * 65536); }
TEST(TnumAuditTest, Intersect) { ExpectSound(TnumOp::kIntersect, 1000); }
TEST(TnumAuditTest, Union) { ExpectSound(TnumOp::kUnion, 1000); }

// The harness itself must catch unsoundness: an abstract "add" that ignores
// carries is the canonical broken transfer function, and the audit's
// violation report should pinpoint a concrete counterexample.
TEST(TnumAuditTest, HarnessDetectsBrokenOperator) {
  // Emulate the audit loop with a deliberately wrong result for one pair:
  // {value=1, mask=0} + {value=1, mask=0} claimed to be {value=1, mask=0}.
  const bpf::Tnum wrong = bpf::TnumConst(1);
  EXPECT_FALSE(wrong.Contains(2));  // 1+1 escapes the claimed set
  TnumViolation v{TnumOp::kAdd, bpf::TnumConst(1), bpf::TnumConst(1), 1, 1,
                  wrong, 2};
  const std::string text = v.ToString();
  EXPECT_NE(text.find("tnum_add"), std::string::npos);
  EXPECT_NE(text.find("not in abstract"), std::string::npos);
}

}  // namespace
}  // namespace bvf
