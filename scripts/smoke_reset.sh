#!/usr/bin/env bash
# Dirty-reset smoke gate (ISSUE 8 acceptance):
#
#   1. Build the tree with BVF_SANITIZE=ON (ASan + UBSan).
#   2. For each engine leg — serial, {--jobs=1, --jobs=4} x {--interp=decoded,
#      --interp=legacy}, and --supervise — run the same 200-iteration campaign
#      twice: once with shipping defaults (dirty-tracked arena reset) and once
#      with BVF_PARANOID_RESET=1, where every reset re-runs the full-arena
#      rewind alongside the dirty-tracked one and aborts on any byte
#      divergence. The two digests must match bit-for-bit per leg: the
#      cross-check is observability-free, so a digest change means the reset
#      leaked state between cases. (Legs are compared against their own twin,
#      not each other — the serial and sharded engines fingerprint their
#      options differently.)
#   3. Checkpoint/resume under paranoid reset: stop at iteration 100, resume,
#      and require the stitched digest to match the uninterrupted serial leg.
#
# Usage: scripts/smoke_reset.sh [build-dir]   (default: build-smoke)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
ITERATIONS=200
SEED=7

echo "== configure + build (BVF_SANITIZE=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target fuzz_campaign >/dev/null

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# digest <logfile> — extracts the campaign digest from a --smoke run's log.
digest() {
    grep '^campaign-digest ' "$1" | awk '{print $2}'
}

# check_leg <name> <flags...> — runs the campaign with and without
# BVF_PARANOID_RESET=1 and requires bit-identical digests.
check_leg() {
    local name="$1"
    shift
    echo
    echo "== leg: $name =="
    "$CAMPAIGN" "$ITERATIONS" "$SEED" --smoke "$@" > "$WORK/$name-plain.log"
    BVF_PARANOID_RESET=1 "$CAMPAIGN" "$ITERATIONS" "$SEED" --smoke "$@" \
        > "$WORK/$name-paranoid.log"
    local plain paranoid
    plain="$(digest "$WORK/$name-plain.log")"
    paranoid="$(digest "$WORK/$name-paranoid.log")"
    if [[ -z "$plain" || "$plain" != "$paranoid" ]]; then
        echo "SMOKE FAIL: $name paranoid digest ($paranoid) != plain ($plain)"
        exit 1
    fi
    echo "smoke: $name digest $plain identical with and without paranoid reset"
}

check_leg serial
check_leg decoded-jobs1 --interp=decoded --jobs=1
check_leg decoded-jobs4 --interp=decoded --jobs=4
check_leg legacy-jobs1 --interp=legacy --jobs=1
check_leg legacy-jobs4 --interp=legacy --jobs=4
check_leg supervise --supervise

echo
echo "== paranoid checkpoint/resume: stop at 100, resume to $ITERATIONS =="
SERIAL_REF="$(digest "$WORK/serial-plain.log")"
BVF_PARANOID_RESET=1 "$CAMPAIGN" "$ITERATIONS" "$SEED" --smoke \
    --stop-after=100 --checkpoint="$WORK/cp.bvfcp" --checkpoint-every=50 \
    > "$WORK/leg1.log"
BVF_PARANOID_RESET=1 "$CAMPAIGN" "$ITERATIONS" "$SEED" --smoke \
    --resume="$WORK/cp.bvfcp" > "$WORK/resumed.log"
RESUMED="$(digest "$WORK/resumed.log")"
if [[ -z "$SERIAL_REF" || "$RESUMED" != "$SERIAL_REF" ]]; then
    echo "SMOKE FAIL: paranoid resumed digest ($RESUMED) != serial reference ($SERIAL_REF)"
    exit 1
fi
echo "smoke: resumed digest $RESUMED matches the uninterrupted serial leg"

echo
echo "smoke_reset: PASS (paranoid dirty-reset cross-check digest-stable on all legs)"
