#!/usr/bin/env bash
# Supervisor smoke gate (ISSUE 7 acceptance):
#
#   1. Build the tree with BVF_ASAN=ON so the fork/pipe/waitpid plumbing and
#      the journal/checkpoint I/O run under ASan/UBSan.
#   2. Digest-equality gate: the same campaign (faults + confirmation +
#      verdict cache) run in-process (--jobs=2) and supervised (--supervise
#      --jobs=2) must produce bit-identical campaign digests.
#   3. Fault-injected leg: re-run supervised with a forced worker crash
#      (--test-crash-at, SIGKILL mode, once via a marker file). The worker is
#      reaped and re-forked, the epoch retried — the digest must STILL be
#      bit-identical, and the supervisor must report exactly one crash and
#      one restart.
#   4. Poison-case leg: a crash with no marker fires on every retry; after
#      --worker-retries=2 failures the case must land in the quarantine file,
#      the campaign must degrade gracefully (one skipped iteration), and
#      --replay-quarantine must read the record back.
#   5. Kill/resume leg: SIGTERM the supervised campaign mid-run (checkpoint +
#      write-ahead journal on), resume, and require the final digest to match
#      the uninterrupted run.
#
# Usage: scripts/smoke_supervisor.sh [build-dir]   (default: build-smoke)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
ITERATIONS=300
SEED=7

echo "== configure + build (BVF_ASAN=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_ASAN=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target fuzz_campaign >/dev/null

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo
echo "== leg 1: in-process reference (--jobs=2) =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --smoke | tee "$WORK/inproc.log"
REF="$(grep '^campaign-digest ' "$WORK/inproc.log" | awk '{print $2}')"

echo
echo "== leg 2: supervised, no faults injected =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --supervise --smoke | tee "$WORK/sup.log"
SUP="$(grep '^campaign-digest ' "$WORK/sup.log" | awk '{print $2}')"
if [[ -z "$REF" || "$SUP" != "$REF" ]]; then
    echo "SMOKE FAIL: supervised digest ($SUP) != in-process digest ($REF)"
    exit 1
fi

echo
echo "== leg 3: supervised with a forced SIGKILL worker crash mid-epoch =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --supervise --smoke \
    --test-crash-at=50 --test-crash-mode=1 --test-crash-marker="$WORK/crash.marker" \
    | tee "$WORK/crash.log"
CRASH="$(grep '^campaign-digest ' "$WORK/crash.log" | awk '{print $2}')"
if [[ "$CRASH" != "$REF" ]]; then
    echo "SMOKE FAIL: crash-recovery digest ($CRASH) != in-process digest ($REF)"
    exit 1
fi
if ! grep -q 'supervisor: *1 crashes / 0 hangs / 0 exits; 1 restarts' "$WORK/crash.log"; then
    echo "SMOKE FAIL: expected exactly one crash + one restart in the supervisor line:"
    grep 'supervisor:' "$WORK/crash.log" || true
    exit 1
fi

echo
echo "== leg 4: poison case is quarantined and replayable =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --supervise --worker-retries=2 \
    --test-crash-at=50 --test-crash-mode=0 --quarantine="$WORK/poison.bvfq" \
    | tee "$WORK/poison.log"
if ! grep -q '1 quarantined, 1 epochs degraded' "$WORK/poison.log"; then
    echo "SMOKE FAIL: poison case was not quarantined:"
    grep 'supervisor:' "$WORK/poison.log" || true
    exit 1
fi
"$CAMPAIGN" --replay-quarantine="$WORK/poison.bvfq" | tee "$WORK/replay.log"
if ! grep -q 'iteration 50 (2 failed attempts' "$WORK/replay.log"; then
    echo "SMOKE FAIL: quarantine replay did not read the poisoned case back"
    exit 1
fi

echo
echo "== leg 5: SIGTERM mid-campaign + resume is bit-identical =="
# A longer campaign so the signal reliably lands mid-run; same seed/options as
# a fresh reference leg below.
KILL_ITERATIONS=3000
"$CAMPAIGN" "$KILL_ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --smoke > "$WORK/long-ref.log"
LONG_REF="$(grep '^campaign-digest ' "$WORK/long-ref.log" | awk '{print $2}')"
"$CAMPAIGN" "$KILL_ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --supervise \
    --checkpoint="$WORK/term.bvfcp" --checkpoint-every=64 \
    --journal="$WORK/term.bvfj" > "$WORK/term.log" 2>&1 &
PID=$!
sleep 3
kill -TERM "$PID" 2>/dev/null || true
wait "$PID" || { echo "SMOKE FAIL: SIGTERMed supervisor exited non-zero"; exit 1; }
if [[ ! -f "$WORK/term.bvfcp" ]]; then
    echo "SMOKE FAIL: no checkpoint written by the SIGTERMed campaign"
    exit 1
fi
"$CAMPAIGN" "$KILL_ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
    --verdict-cache=on --jobs=2 --supervise --resume="$WORK/term.bvfcp" \
    --journal="$WORK/term.bvfj" --smoke | tee "$WORK/resumed.log"
RESUMED="$(grep '^campaign-digest ' "$WORK/resumed.log" | awk '{print $2}')"
if [[ -z "$LONG_REF" || "$RESUMED" != "$LONG_REF" ]]; then
    echo "SMOKE FAIL: SIGTERM+resume digest ($RESUMED) != uninterrupted digest ($LONG_REF)"
    exit 1
fi

echo
echo "smoke: supervised digest $REF matches in-process on clean, crash, and kill/resume legs"
echo "smoke_supervisor: PASS"
