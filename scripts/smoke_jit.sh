#!/usr/bin/env bash
# JIT execution tier smoke gate (ISSUE 9 acceptance):
#
#   1. Build the tree with BVF_SANITIZE=ON so the JIT's C++ half (compiler,
#      trampolines, cache) runs under host ASan/UBSan. The generated code
#      itself is uninstrumented by construction; every side effect it performs
#      goes through instrumented trampolines.
#   2. Run the JIT-specific suites (JitCacheTest, JitEngineTest) plus the
#      three-way engine parity suite under sanitizers.
#   3. Run the same campaign as a 3x3 matrix — {--interp=jit, decoded, legacy}
#      x {--jobs=1, --jobs=4, --supervise --jobs=2} — and require all nine
#      campaign digests to be bit-identical: neither the execution tier nor
#      the execution topology may leak into findings, outcomes, coverage, or
#      stats.
#   4. Require the jit-cache hit/miss/evict counters to be identical at
#      --jobs=1 and --jobs=4 (epoch-commit discipline; supervised legs keep
#      process-local caches, so their digest-excluded counters are exempt).
#   5. Checkpoint/resume with the jit tier: a mid-run stop + resume at
#      --interp=jit must reproduce the uninterrupted digest, and a checkpoint
#      written under --interp=decoded must resume under --interp=jit with the
#      same digest (the engine is deliberately excluded from the checkpoint
#      fingerprint).
#
# Usage: scripts/smoke_jit.sh [build-dir]   (default: build-smoke)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
ITERATIONS=200
SEED=13

echo "== configure + build (BVF_SANITIZE=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target interp_parity_test fuzz_campaign >/dev/null

echo
echo "== jit suites + three-way parity (ASan/UBSan) =="
"$BUILD_DIR/tests/interp_parity_test" \
    --gtest_filter='JitCacheTest.*:JitEngineTest.*:InterpParityTest.*'

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

declare -A DIGESTS
for INTERP in jit decoded legacy; do
    for MODE in jobs1 jobs4 supervised; do
        case "$MODE" in
            jobs1) FLAGS=(--jobs=1) ;;
            jobs4) FLAGS=(--jobs=4) ;;
            supervised) FLAGS=(--supervise --jobs=2) ;;
        esac
        echo
        echo "== campaign --interp=$INTERP $MODE (ASan/UBSan) =="
        "$CAMPAIGN" "$ITERATIONS" "$SEED" --interp="$INTERP" "${FLAGS[@]}" --smoke \
            | tee "$WORK/$INTERP-$MODE.log"
        DIGESTS[$INTERP-$MODE]="$(grep '^campaign-digest ' "$WORK/$INTERP-$MODE.log" | awk '{print $2}')"
    done
done

echo
echo "== nine-way digest comparison: engine x topology =="
REF="${DIGESTS[jit-jobs1]}"
for INTERP in jit decoded legacy; do
    for MODE in jobs1 jobs4 supervised; do
        KEY="$INTERP-$MODE"
        if [[ -z "$REF" || "${DIGESTS[$KEY]}" != "$REF" ]]; then
            echo "SMOKE FAIL: campaign digest at $KEY (${DIGESTS[$KEY]}) != jit-jobs1 ($REF)"
            exit 1
        fi
    done
done
echo "smoke: all nine engine/topology combinations produced digest $REF"

# Jit-cache counters must be job-count-invariant across the in-process legs.
JC1="$(grep 'jit cache:' "$WORK/jit-jobs1.log" || true)"
JC4="$(grep 'jit cache:' "$WORK/jit-jobs4.log" || true)"
if [[ -n "$JC1" || -n "$JC4" ]]; then
    if [[ "$JC1" != "$JC4" ]]; then
        echo "SMOKE FAIL: jit-cache counters diverge across job counts:"
        echo "  jobs=1: $JC1"
        echo "  jobs=4: $JC4"
        exit 1
    fi
    echo "smoke: jit-cache counters job-invariant ($(echo "$JC1" | sed 's/^ *//'))"
else
    echo "smoke: jit tier unavailable on this host; cache invariance leg skipped"
fi

echo
echo "== checkpoint/resume at --interp=jit =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --interp=jit --jobs=2 --smoke \
    --stop-after=100 --checkpoint="$WORK/jit.bvfcp" --checkpoint-every=50 \
    > "$WORK/jit-leg1.log"
"$CAMPAIGN" "$ITERATIONS" "$SEED" --interp=jit --jobs=2 --smoke \
    --resume="$WORK/jit.bvfcp" | tee "$WORK/jit-resumed.log"
DIGEST_RESUMED="$(grep '^campaign-digest ' "$WORK/jit-resumed.log" | awk '{print $2}')"
if [[ -z "$DIGEST_RESUMED" || "$DIGEST_RESUMED" != "$REF" ]]; then
    echo "SMOKE FAIL: jit resume digest $DIGEST_RESUMED != uninterrupted $REF"
    exit 1
fi
echo "smoke: jit checkpoint/resume digest matches uninterrupted run"

echo
echo "== cross-engine resume: checkpoint at --interp=decoded, resume at --interp=jit =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --interp=decoded --jobs=2 --smoke \
    --stop-after=100 --checkpoint="$WORK/cross.bvfcp" --checkpoint-every=50 \
    > "$WORK/cross-leg1.log"
"$CAMPAIGN" "$ITERATIONS" "$SEED" --interp=jit --jobs=2 --smoke \
    --resume="$WORK/cross.bvfcp" | tee "$WORK/cross-resumed.log"
DIGEST_CROSS="$(grep '^campaign-digest ' "$WORK/cross-resumed.log" | awk '{print $2}')"
if [[ -z "$DIGEST_CROSS" || "$DIGEST_CROSS" != "$REF" ]]; then
    echo "SMOKE FAIL: cross-engine resume digest $DIGEST_CROSS != uninterrupted $REF"
    exit 1
fi
echo "smoke: decoded-written checkpoint resumed on the jit tier, digest unchanged"
echo "smoke_jit: PASS"
