#!/usr/bin/env bash
# Robustness smoke gate (ISSUE 2 acceptance):
#
#   1. Build the tree with BVF_SANITIZE=ON (ASan + UBSan) so the engine itself
#      runs under sanitizers while it injects faults into the simulated kernel.
#   2. Run a 200-iteration campaign with 10% fault injection and 3-run finding
#      confirmation; fuzz_campaign --smoke exits non-zero if any iteration
#      lands outside a classified outcome bucket or any finding is left
#      unconfirmed.
#   3. Re-run the same campaign as two legs (mid-run stop + --resume) and
#      require the campaign digest to match the uninterrupted run bit-for-bit.
#
# Usage: scripts/smoke_robustness.sh [build-dir]   (default: build-smoke)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
ITERATIONS=200
SEED=7

echo "== configure + build (BVF_SANITIZE=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target fuzz_campaign >/dev/null

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== leg 1: uninterrupted campaign, faults + confirmation =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=3 --smoke \
    | tee "$WORK/straight.log"
DIGEST_STRAIGHT="$(grep '^campaign-digest ' "$WORK/straight.log" | awk '{print $2}')"

echo
echo "== leg 2: stop at iteration 100, then resume from checkpoint =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=3 --smoke \
    --stop-after=100 --checkpoint="$WORK/cp.bvfcp" --checkpoint-every=50 \
    > "$WORK/leg1.log"
"$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=3 --smoke \
    --resume="$WORK/cp.bvfcp" | tee "$WORK/resumed.log"
DIGEST_RESUMED="$(grep '^campaign-digest ' "$WORK/resumed.log" | awk '{print $2}')"

echo
if [[ -z "$DIGEST_STRAIGHT" || "$DIGEST_STRAIGHT" != "$DIGEST_RESUMED" ]]; then
    echo "SMOKE FAIL: resume digest $DIGEST_RESUMED != straight digest $DIGEST_STRAIGHT"
    exit 1
fi
echo "smoke: resume digest matches uninterrupted run ($DIGEST_STRAIGHT)"
echo "smoke_robustness: PASS"
