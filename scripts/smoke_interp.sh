#!/usr/bin/env bash
# Decode-once micro-op engine smoke gate (ISSUE 4 acceptance):
#
#   1. Build the tree with BVF_SANITIZE=ON so the differential parity suite
#      and the campaigns below run under host ASan/UBSan — the decoder, the
#      threaded-dispatch loop, and the decode cache must be clean.
#   2. Run the differential parity suite (tests/interp_parity_test.cc):
#      legacy and decoded engines must agree instruction-for-instruction on
#      results, sanitizer verdicts, and step accounting.
#   3. Run the same campaign four ways — {--interp=decoded, --interp=legacy}
#      x {--jobs=1, --jobs=2} — and require all four campaign digests to be
#      bit-identical: the execution engine and the job count must both be
#      invisible to findings, outcome histograms, coverage, and stats.
#   4. Require the decode-cache hit/miss/evict counters to be identical at
#      --jobs=1 and --jobs=2 (epoch-commit discipline).
#
# Usage: scripts/smoke_interp.sh [build-dir]   (default: build-smoke)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
ITERATIONS=300
SEED=11

echo "== configure + build (BVF_SANITIZE=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target interp_parity_test fuzz_campaign >/dev/null

echo
echo "== differential parity suite (ASan/UBSan) =="
"$BUILD_DIR/tests/interp_parity_test"

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

declare -A DIGESTS
for INTERP in decoded legacy; do
    for JOBS in 1 2; do
        echo
        echo "== campaign --interp=$INTERP --jobs=$JOBS (ASan/UBSan) =="
        # --smoke turns on the campaign's self-checks and the campaign-digest
        # line; it also runs an embedded jobs=1-vs-2 invariance check in the
        # selected engine.
        "$CAMPAIGN" "$ITERATIONS" "$SEED" --interp="$INTERP" --jobs="$JOBS" --smoke \
            | tee "$WORK/$INTERP-jobs$JOBS.log"
        DIGESTS[$INTERP-$JOBS]="$(grep '^campaign-digest ' "$WORK/$INTERP-jobs$JOBS.log" | awk '{print $2}')"
    done
done

echo
echo "== four-way digest comparison: engine x job count =="
REF="${DIGESTS[decoded-1]}"
for KEY in decoded-2 legacy-1 legacy-2; do
    if [[ -z "$REF" || "${DIGESTS[$KEY]}" != "$REF" ]]; then
        echo "SMOKE FAIL: campaign digest at $KEY (${DIGESTS[$KEY]}) != decoded-1 ($REF)"
        exit 1
    fi
done

# Decode-cache counters must be job-count-invariant (only the decoded engine
# populates the cache, so compare its two legs).
DC1="$(grep 'decode cache:' "$WORK/decoded-jobs1.log")"
DC2="$(grep 'decode cache:' "$WORK/decoded-jobs2.log")"
if [[ -z "$DC1" || "$DC1" != "$DC2" ]]; then
    echo "SMOKE FAIL: decode-cache counters diverge across job counts:"
    echo "  jobs=1: $DC1"
    echo "  jobs=2: $DC2"
    exit 1
fi

echo "smoke: all four engine/jobs combinations produced digest $REF"
echo "smoke: decode-cache counters job-invariant ($(echo "$DC1" | sed 's/^ *//'))"
echo "smoke_interp: PASS"
