#!/usr/bin/env bash
# Umbrella smoke gate (ISSUE 5 satellite): one command that runs every
# subsystem's smoke script plus the metamorphic-oracle gates this PR adds.
#
#   1. scripts/smoke_robustness.sh — fault injection + resume digest (ASan).
#   2. scripts/smoke_parallel.sh   — job-count invariance (TSan).
#   3. scripts/smoke_interp.sh     — engine parity + decode cache (ASan).
#   4. scripts/smoke_supervisor.sh — crash-isolated supervisor: supervised vs
#      in-process digest equality, forced-crash recovery, poison-case
#      quarantine + replay, SIGTERM + resume bit-identity (ASan).
#   5. scripts/smoke_reset.sh     — BVF_PARANOID_RESET=1 digest gate: the
#      dirty-tracked arena reset cross-checked against the full rewind across
#      jobs x interp x --supervise legs, plus checkpoint/resume (ASan).
#   6. scripts/smoke_jit.sh      — JIT execution tier: jit suites under ASan,
#      the 3x3 {--interp=jit,decoded,legacy} x {jobs=1, jobs=4, --supervise}
#      digest matrix, jit-cache job invariance, and jit + cross-engine
#      checkpoint/resume bit-identity.
#   7. scripts/smoke_conformance.sh — conformance corpus: the suite under
#      ASan, the vendored corpus campaign digest across {--jobs=1, --jobs=4,
#      --supervise}, counter-line equality, and checkpoint/resume with the
#      prologue active (ASan).
#   8. Metamorph gate: a short --metamorph --metamorph-k=2 campaign under
#      ASan/UBSan must produce one bit-identical campaign digest across
#      {--jobs=1, --jobs=4} x {--interp=decoded, --interp=legacy}, and the
#      metamorph counter line must be identical on every leg.
#   9. Tier-1 label audit: every discovered ctest test must carry the tier1
#      label (`ctest -N` count == `ctest -N -L tier1` count) and the suites
#      this tree considers load-bearing (supervisor, journal, parallel,
#      robustness, jit) must actually be discovered, so nothing can silently
#      drop out of the gate the driver runs.
#
# Usage: scripts/smoke_all.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-smoke build-tsan)

set -euo pipefail

cd "$(dirname "$0")/.."
ASAN_DIR="${1:-build-smoke}"
TSAN_DIR="${2:-build-tsan}"
MM_ITERATIONS=200
MM_SEED=7

echo "==== [1/9] smoke_robustness ===="
scripts/smoke_robustness.sh "$ASAN_DIR"

echo
echo "==== [2/9] smoke_parallel ===="
scripts/smoke_parallel.sh "$TSAN_DIR"

echo
echo "==== [3/9] smoke_interp ===="
scripts/smoke_interp.sh "$ASAN_DIR"

echo
echo "==== [4/9] smoke_supervisor ===="
scripts/smoke_supervisor.sh "$ASAN_DIR"

echo
echo "==== [5/9] smoke_reset ===="
scripts/smoke_reset.sh "$ASAN_DIR"

echo
echo "==== [6/9] smoke_jit ===="
scripts/smoke_jit.sh "$ASAN_DIR"

echo
echo "==== [7/9] smoke_conformance ===="
scripts/smoke_conformance.sh "$ASAN_DIR"

echo
echo "==== [8/9] metamorph digest gate (ASan/UBSan) ===="
CAMPAIGN="$ASAN_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

declare -A DIGESTS
for INTERP in decoded legacy; do
    for JOBS in 1 4; do
        echo
        echo "== campaign --metamorph --interp=$INTERP --jobs=$JOBS =="
        "$CAMPAIGN" "$MM_ITERATIONS" "$MM_SEED" --metamorph --metamorph-k=2 \
            --interp="$INTERP" --jobs="$JOBS" --smoke \
            | tee "$WORK/mm-$INTERP-jobs$JOBS.log"
        DIGESTS[$INTERP-$JOBS]="$(grep '^campaign-digest ' "$WORK/mm-$INTERP-jobs$JOBS.log" | awk '{print $2}')"
    done
done

echo
REF="${DIGESTS[decoded-1]}"
for KEY in decoded-4 legacy-1 legacy-4; do
    if [[ -z "$REF" || "${DIGESTS[$KEY]}" != "$REF" ]]; then
        echo "SMOKE FAIL: metamorph campaign digest at $KEY (${DIGESTS[$KEY]}) != decoded-1 ($REF)"
        exit 1
    fi
done

# The oracle's volume counters (bases/variants/divergences) are digest-
# excluded, so gate them separately: all four legs must report the same line.
MMREF="$(grep 'metamorph:' "$WORK/mm-decoded-jobs1.log")"
for KEY in decoded-jobs4 legacy-jobs1 legacy-jobs4; do
    MM="$(grep 'metamorph:' "$WORK/mm-$KEY.log")"
    if [[ -z "$MMREF" || "$MM" != "$MMREF" ]]; then
        echo "SMOKE FAIL: metamorph counters diverge at $KEY:"
        echo "  decoded-jobs1: $MMREF"
        echo "  $KEY: $MM"
        exit 1
    fi
done
echo "smoke: metamorph campaign digest $REF on all four engine/jobs legs"
echo "smoke: metamorph counters identical ($(echo "$MMREF" | sed 's/^ *//'))"

echo
echo "==== [9/9] tier-1 label audit ===="
# gtest test discovery happens at build time, so the audit needs the whole
# tree built in the ASan dir (the earlier legs only built their own targets).
cmake --build "$ASAN_DIR" -j"$(nproc)" >/dev/null
ALL_TESTS="$(ctest --test-dir "$ASAN_DIR" -N 2>/dev/null | sed -n 's/^Total Tests: *//p')"
TIER1_TESTS="$(ctest --test-dir "$ASAN_DIR" -N -L tier1 2>/dev/null | sed -n 's/^Total Tests: *//p')"
if [[ -z "$ALL_TESTS" || "$ALL_TESTS" -eq 0 ]]; then
    echo "SMOKE FAIL: ctest discovered no tests in $ASAN_DIR (build the test targets first)"
    exit 1
fi
if [[ "$ALL_TESTS" != "$TIER1_TESTS" ]]; then
    echo "SMOKE FAIL: $ALL_TESTS tests discovered but only $TIER1_TESTS carry the tier1 label"
    exit 1
fi
for SUITE in SupervisorDigestTest JournalTest ParallelInvarianceTest CheckpointTest JitCacheTest JitEngineTest ConformanceCorpusTest AsmRoundTripTest; do
    if ! ctest --test-dir "$ASAN_DIR" -N -L tier1 2>/dev/null | grep -q "$SUITE"; then
        echo "SMOKE FAIL: load-bearing suite $SUITE not discovered under the tier1 label"
        exit 1
    fi
done
echo "smoke: all $ALL_TESTS discovered tests carry the tier1 label (load-bearing suites present)"

echo
echo "smoke_all: PASS"
