#!/usr/bin/env bash
# Parallel-engine smoke gate (ISSUE 3 acceptance):
#
#   1. Build the tree with BVF_TSAN=ON so the sharded campaign engine runs
#      under ThreadSanitizer — the epoch-barrier discipline (frozen snapshots
#      between barriers, coordinator-only merges) must be data-race free.
#   2. Run the same campaign at --jobs=1, --jobs=2, and --jobs=4 (faults +
#      confirmation + verdict cache on) and require every campaign digest to
#      match: findings, outcome histograms, coverage, and stats must be
#      bit-identical for any job count.
#   3. fuzz_campaign --smoke additionally runs its own embedded jobs=1 vs
#      jobs=2 invariance check and exits non-zero on divergence.
#
# Usage: scripts/smoke_parallel.sh [build-dir]   (default: build-tsan)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
ITERATIONS=200
SEED=7

echo "== configure + build (BVF_TSAN=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_TSAN=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target fuzz_campaign >/dev/null

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

declare -A DIGESTS
for JOBS in 1 2 4; do
    echo
    echo "== campaign at --jobs=$JOBS (TSan) =="
    # An explicit --jobs (even =1) selects the parallel engine, so all three
    # legs run the same determinism model and every digest must match.
    "$CAMPAIGN" "$ITERATIONS" "$SEED" --fault-rate=0.1 --confirm-runs=2 \
        --verdict-cache=on --jobs="$JOBS" --smoke | tee "$WORK/jobs$JOBS.log"
    DIGESTS[$JOBS]="$(grep '^parallel-invariance-digest ' "$WORK/jobs$JOBS.log" | awk '{print $2}')"
done

echo
for JOBS in 2 4; do
    if [[ -z "${DIGESTS[1]}" || "${DIGESTS[$JOBS]}" != "${DIGESTS[1]}" ]]; then
        echo "SMOKE FAIL: invariance digest at jobs=$JOBS (${DIGESTS[$JOBS]}) != jobs=1 (${DIGESTS[1]})"
        exit 1
    fi
done

# Direct cross-job digest comparison of the parallel engine's own campaigns.
echo "== direct jobs=1 vs jobs=2 vs jobs=4 campaign digest comparison =="
D1="$(grep '^campaign-digest ' "$WORK/jobs1.log" | awk '{print $2}')"
D2="$(grep '^campaign-digest ' "$WORK/jobs2.log" | awk '{print $2}')"
D4="$(grep '^campaign-digest ' "$WORK/jobs4.log" | awk '{print $2}')"
if [[ -z "$D1" || "$D1" != "$D2" || "$D1" != "$D4" ]]; then
    echo "SMOKE FAIL: campaign digests diverge: jobs=1 ($D1) jobs=2 ($D2) jobs=4 ($D4)"
    exit 1
fi
echo "smoke: all job counts produced digest $D1 (invariance ${DIGESTS[1]})"
echo "smoke_parallel: PASS"
