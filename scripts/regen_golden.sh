#!/usr/bin/env bash
# Regenerates the golden-corpus disassembly snapshots (tests/data/golden/)
# after an *intentional* generator change. The diff this produces is the
# review artifact: every changed snapshot is a seed whose campaign results
# move.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake --build "$BUILD_DIR" --target golden_corpus_test
BVF_GOLDEN_REGEN=1 "$BUILD_DIR/tests/golden_corpus_test" \
  --gtest_filter='GoldenCorpusTest.SnapshotsAreByteStable'

echo "regenerated $(ls tests/data/golden/seed_*.txt | wc -l) golden snapshots:"
git status --short tests/data/golden/ || true
