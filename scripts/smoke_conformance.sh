#!/usr/bin/env bash
# Conformance corpus smoke gate (ISSUE 10 acceptance):
#
#   1. Build the tree with BVF_SANITIZE=ON so the assembler, corpus loader,
#      and runner execute under host ASan/UBSan.
#   2. Run the conformance suite (round-trip property, corpus x three
#      engines x sanitizers, injected-miscompile oracle proof, negative
#      parses) under sanitizers.
#   3. Run a campaign with --conformance=tests/data/conformance at
#      {--jobs=1, --jobs=4, --supervise --jobs=2} and require one
#      bit-identical campaign digest: the prologue runs coordinator-side
#      exactly once, so the execution topology may not leak into findings or
#      stats. The digest-excluded `conformance:` volume counters must also be
#      identical on every leg, and every leg must report zero mismatches and
#      zero verdict gaps.
#   4. Checkpoint mid-campaign with the conformance prologue active, resume,
#      and require the uninterrupted digest: resume skips the prologue (the
#      checkpoint carries its findings, counters, and seeded corpus), so this
#      proves the `conf` checkpoint line round-trips.
#
# Usage: scripts/smoke_conformance.sh [build-dir]   (default: build-smoke)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"
ITERATIONS=200
SEED=7
CORPUS=tests/data/conformance

echo "== configure + build (BVF_SANITIZE=ON) =="
cmake -B "$BUILD_DIR" -S . -DBVF_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target conformance_test fuzz_campaign >/dev/null

echo
echo "== conformance suite (ASan/UBSan) =="
"$BUILD_DIR/tests/conformance_test"

CAMPAIGN="$BUILD_DIR/examples/fuzz_campaign"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

declare -A DIGESTS
for MODE in jobs1 jobs4 supervised; do
    case "$MODE" in
        jobs1) FLAGS=(--jobs=1) ;;
        jobs4) FLAGS=(--jobs=4) ;;
        supervised) FLAGS=(--supervise --jobs=2) ;;
    esac
    echo
    echo "== campaign --conformance=$CORPUS $MODE (ASan/UBSan) =="
    "$CAMPAIGN" "$ITERATIONS" "$SEED" --conformance="$CORPUS" "${FLAGS[@]}" --smoke \
        | tee "$WORK/conf-$MODE.log"
    DIGESTS[$MODE]="$(grep '^campaign-digest ' "$WORK/conf-$MODE.log" | awk '{print $2}')"
done

echo
echo "== three-way digest comparison across topologies =="
REF="${DIGESTS[jobs1]}"
for MODE in jobs1 jobs4 supervised; do
    if [[ -z "$REF" || "${DIGESTS[$MODE]}" != "$REF" ]]; then
        echo "SMOKE FAIL: campaign digest at $MODE (${DIGESTS[$MODE]}) != jobs1 ($REF)"
        exit 1
    fi
done
echo "smoke: all three topologies produced digest $REF"

# The conformance volume counters are digest-excluded, so gate them
# separately: every leg must report the identical line, and that line must
# show a full-corpus clean pass.
CONFREF="$(grep 'conformance:' "$WORK/conf-jobs1.log")"
for MODE in jobs4 supervised; do
    CONF="$(grep 'conformance:' "$WORK/conf-$MODE.log")"
    if [[ -z "$CONFREF" || "$CONF" != "$CONFREF" ]]; then
        echo "SMOKE FAIL: conformance counters diverge at $MODE:"
        echo "  jobs1: $CONFREF"
        echo "  $MODE: $CONF"
        exit 1
    fi
done
if ! echo "$CONFREF" | grep -q '0 mismatch(es), 0 verdict gap(s)'; then
    echo "SMOKE FAIL: conformance corpus not clean: $CONFREF"
    exit 1
fi
echo "smoke: conformance counters identical ($(echo "$CONFREF" | sed 's/^ *//'))"

echo
echo "== checkpoint/resume with the conformance prologue active =="
"$CAMPAIGN" "$ITERATIONS" "$SEED" --conformance="$CORPUS" --jobs=2 --smoke \
    --stop-after=100 --checkpoint="$WORK/conf.bvfcp" --checkpoint-every=50 \
    > "$WORK/conf-leg1.log"
"$CAMPAIGN" "$ITERATIONS" "$SEED" --conformance="$CORPUS" --jobs=2 --smoke \
    --resume="$WORK/conf.bvfcp" | tee "$WORK/conf-resumed.log"
DIGEST_RESUMED="$(grep '^campaign-digest ' "$WORK/conf-resumed.log" | awk '{print $2}')"
if [[ -z "$DIGEST_RESUMED" || "$DIGEST_RESUMED" != "$REF" ]]; then
    echo "SMOKE FAIL: resume digest $DIGEST_RESUMED != uninterrupted $REF"
    exit 1
fi
CONF_RESUMED="$(grep 'conformance:' "$WORK/conf-resumed.log")"
if [[ "$CONF_RESUMED" != "$CONFREF" ]]; then
    echo "SMOKE FAIL: resumed conformance counters diverge:"
    echo "  uninterrupted: $CONFREF"
    echo "  resumed:       $CONF_RESUMED"
    exit 1
fi
echo "smoke: conformance checkpoint/resume digest and counters match uninterrupted run"
echo "smoke_conformance: PASS"
